"""The supervised streaming loop: :class:`StreamSupervisor`.

One cycle of the loop is::

    poll tail -> extend backlog (shed oldest past the cap)
              -> apply up to max_apply_per_cycle records
                   (score against the live predictor, feed drift,
                    fold the applied digest, fill retrain buffers)
              -> refit whatever drift says is due (breaker-gated)
              -> heartbeat gauges
              -> atomic checkpoint

**Exactly-once by construction.**  The checkpoint is *one* atomic,
checksummed document (a :class:`~repro.serve.durability.SnapshotStore`
generation) holding the tail's byte offset, the retrain controller's
state, the drift windows, the unapplied backlog, and the running
applied-records digest.  Apply-side effects are purely in-memory until
the checkpoint lands, so a crash anywhere rolls the *pair* (position,
consumption) back to the same consistent point: on restart the tail
re-reads exactly the bytes whose effects were lost, and a record's
effects are committed exactly once.  (Retrain publishes artifacts to
disk outside this transaction — deliberately: a re-published model is
idempotent-by-generation-gate, see
:meth:`~repro.serve.stream.retrain.RetrainController.load_state`.)

**Never block serving.**  The backlog is bounded: past
``max_backlog_records`` the *oldest* unapplied rows are shed and counted
(``stream_shed_records_total``) — the loop degrades to sampled history,
never to an unbounded queue or a stalled predictor.

**Liveness.**  Every cycle stamps heartbeat gauges
(``stream_last_cycle_unix`` / ``stream_backlog_records``); ``status()``
reports the heartbeat age so an external supervisor can detect a wedged
loop.  ``request_stop(drain=True)`` finishes the backlog and writes a
final checkpoint before returning (graceful drain); ``drain=False``
checkpoints and stops immediately.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.logs.schema import LOG_DTYPE
from repro.obs import Observability
from repro.serve.active_set import ActiveSet
from repro.serve.batch import BatchOnlinePredictor
from repro.serve.durability.snapshot import SnapshotStore
from repro.serve.stream.retrain import RetrainController
from repro.serve.stream.tail import TailIngester
from repro.sim.gridftp import TransferRequest

__all__ = [
    "StreamConfig",
    "StreamSupervisor",
    "SimulatedCrash",
    "fold_digest",
    "read_stream_status",
]


class SimulatedCrash(RuntimeError):
    """Raised by a crash hook to kill the loop at a chosen stage (test /
    chaos instrumentation; production code never raises it)."""


@dataclass(frozen=True)
class StreamConfig:
    poll_interval_s: float = 1.0
    max_backlog_records: int = 4096
    max_apply_per_cycle: int = 1024
    checkpoint_every: int = 1       # cycles between checkpoints
    keep_checkpoints: int = 3
    heartbeat_stale_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_backlog_records < 1 or self.max_apply_per_cycle < 1:
            raise ValueError("backlog and apply caps must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


def fold_digest(digest: str, arr: np.ndarray) -> str:
    """Fold applied records into a running SHA-256 chain.

    Deterministic function of the record *contents in application
    order* — independent of predictions, wall clocks, or restart count —
    which is exactly what makes it usable as the chaos proof that no
    record was applied zero or two times across crashes.
    """
    h = digest
    for i in range(len(arr)):
        row = arr[i]
        payload = json.dumps(
            [row[name].item() for name in LOG_DTYPE.names],
            separators=(",", ":"),
        )
        h = hashlib.sha256((h + payload).encode("utf-8")).hexdigest()
    return h


class StreamSupervisor:
    """Owns one tail + one retrain controller + one serving predictor."""

    _CHECKPOINT_SECTIONS = ("tail", "retrain", "drift", "stream", "obs")

    def __init__(
        self,
        tail: TailIngester,
        controller: RetrainController,
        state_dir: str | Path,
        obs: Observability | None = None,
        config: StreamConfig | None = None,
        active: ActiveSet | None = None,
        clock=time.time,
        sleep=time.sleep,
        crash_hook=None,
    ) -> None:
        self.tail = tail
        self.controller = controller
        self.config = config or StreamConfig()
        self.obs = obs if obs is not None else Observability.create(trace=False)
        if self.obs.drift is None:
            raise ValueError("supervisor needs an Observability bundle "
                             "with a drift monitor")
        self.drift = self.obs.drift
        self.events = self.obs.events
        self.slo = self.obs.slo
        # Components constructed without an event log inherit the
        # bundle's, so one sink carries the whole loop's events.
        if self.events is not None:
            if getattr(controller, "events", None) is None:
                controller.events = self.events
            if getattr(tail, "events", None) is None:
                from repro.obs.events import QuarantineBurstDetector

                tail.events = self.events
                tail.burst = QuarantineBurstDetector(
                    self.events, source=tail.path.name)
        self.state_dir = Path(state_dir)
        self.checkpoints = SnapshotStore(self.state_dir / "checkpoints")
        self.active = active if active is not None \
            else ActiveSet(lenient=True, obs=self.obs)
        self.predictor = BatchOnlinePredictor(
            controller.chain, self.active, obs=self.obs)
        self._clock = clock
        self._sleep = sleep
        # crash_hook(stage) may raise SimulatedCrash; stages are
        # "polled" / "applied" / "retrained" / "checkpointed".
        self._crash_hook = crash_hook

        self._backlog: list[tuple] = []
        self.applied_records = 0
        self.applied_digest = ""
        self.shed_records = 0
        self.cycles = 0
        self.data_now = 0.0          # newest applied completion time
        self._ckpt_data_now = 0.0    # data_now at the last durable checkpoint
        self._generation = 0
        self._last_beat = float(clock())
        self._stop = False
        self._drain = True
        self._recover()

    # -- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        loaded = self.checkpoints.load_latest()
        # Next write must clear even invalid newer generations on disk —
        # SnapshotStore.write refuses to overwrite an existing file.
        generations = self.checkpoints.generations()
        self._generation = generations[-1] if generations else 0
        if loaded is None:
            # A cold start is still a recovery point: nothing a previous
            # incarnation emitted before its first checkpoint was ever
            # durable, so the event seq and SLO state roll back to zero
            # (truncating the sink) exactly like a checkpointed resume —
            # otherwise a crash before the first checkpoint would leave
            # duplicated events and SLI samples behind.
            if self.events is not None:
                self.events.load_state({})
            if self.slo is not None:
                self.slo.load_state({})
            return
        payload = loaded.payload
        # Roll the event seq back *first*: everything emitted past the
        # checkpoint (sink lines included) is discarded, so the events
        # the resumed loop re-emits land on the same sequence numbers —
        # exactly-once for the event stream too.
        obs_state = payload.get("obs", {})
        if self.events is not None:
            self.events.load_state(obs_state.get("events", {}))
        if self.slo is not None:
            self.slo.load_state(obs_state.get("slo", {}))
        self.tail.load_state(payload.get("tail", {}))
        self.controller.load_state(payload.get("retrain", {}))
        self.drift.load_snapshot(payload.get("drift", {}))
        stream = payload.get("stream", {})
        self._backlog = [tuple(row) for row in stream.get("backlog", ())]
        self.applied_records = int(stream.get("applied_records", 0))
        self.applied_digest = str(stream.get("applied_digest", ""))
        self.shed_records = int(stream.get("shed_records", 0))
        self.cycles = int(stream.get("cycles", 0))
        self.data_now = float(stream.get("data_now", 0.0))
        self._ckpt_data_now = float(
            stream.get("ckpt_data_now", self.data_now))
        registry = self.obs.registry
        registry.counter(
            "stream_recoveries_total",
            "Supervisor starts that resumed from a checkpoint.",
        ).inc()
        if loaded.rejected:
            registry.counter(
                "stream_checkpoint_fallbacks_total",
                "Corrupt newer checkpoint generations skipped at recovery.",
            ).inc(len(loaded.rejected))
        if self.events is not None:
            self.events.emit(
                "durability", "stream_recovered",
                severity="warning" if loaded.rejected else "info",
                generation=loaded.generation,
                rejected_generations=len(loaded.rejected),
                applied_records=self.applied_records,
                data_now=self.data_now,
            )

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self) -> int:
        """Atomically persist (tail position, consumer state) as one
        generation; prune old generations.  Returns the generation."""
        self._generation += 1
        obs_state = {}
        if self.events is not None:
            obs_state["events"] = self.events.state_dict()
        if self.slo is not None:
            obs_state["slo"] = self.slo.state_dict()
        sections = {
            "tail": self.tail.state_dict(),
            "retrain": self.controller.state_dict(),
            "drift": self.drift.dump_state(),
            "stream": {
                "backlog": [list(row) for row in self._backlog],
                "applied_records": int(self.applied_records),
                "applied_digest": self.applied_digest,
                "shed_records": int(self.shed_records),
                "cycles": int(self.cycles),
                "data_now": float(self.data_now),
                "ckpt_data_now": float(self.data_now),
            },
            "obs": obs_state,
        }
        self.checkpoints.write(self._generation, sections,
                               last_seq=self.applied_records)
        self._ckpt_data_now = float(self.data_now)
        self.checkpoints.prune(keep=max(2, self.config.keep_checkpoints))
        registry = self.obs.registry
        registry.counter(
            "stream_checkpoints_total", "Checkpoints written.").inc()
        registry.gauge(
            "stream_checkpoint_generation",
            "Newest checkpoint generation.").set(float(self._generation))
        return self._generation

    # -- the loop -----------------------------------------------------------

    def _crash(self, stage: str) -> None:
        if self._crash_hook is not None:
            self._crash_hook(stage)

    def cycle(self, poll: bool = True) -> bool:
        """One loop iteration; returns whether any progress was made."""
        self.cycles += 1
        batch = self.tail.poll() if poll else None
        self._crash("polled")
        ingested = 0
        if batch is not None and len(batch.records):
            ingested = len(batch.records)
            for i in range(ingested):
                self._backlog.append(tuple(
                    batch.records[i][name].item() for name in LOG_DTYPE.names))
            overflow = len(self._backlog) - self.config.max_backlog_records
            if overflow > 0:
                # Shed the *oldest* unapplied rows: bounded memory beats
                # complete history, and newest data drives drift best.
                del self._backlog[:overflow]
                self.shed_records += overflow
                self.obs.registry.counter(
                    "stream_shed_records_total",
                    "Backlog rows dropped (oldest-first) at the cap.",
                ).inc(overflow)
        applied = self._apply()
        self._crash("applied")
        if self.controller is not None:
            self.controller.refit_due(self.data_now)
        self._crash("retrained")
        self._heartbeat()
        if self.cycles % self.config.checkpoint_every == 0:
            self.checkpoint()
        self._crash("checkpointed")
        return ingested > 0 or applied > 0

    def _apply(self) -> int:
        """Apply up to ``max_apply_per_cycle`` backlog rows: score them
        against the live predictor, feed drift + retrain buffers, fold
        the applied digest.  In-memory only — durable at checkpoint."""
        if not self._backlog:
            return 0
        take = min(len(self._backlog), self.config.max_apply_per_cycle)
        rows = self._backlog[:take]
        arr = np.array(rows, dtype=LOG_DTYPE)
        self.data_now = max(self.data_now, float(arr["te"].max()))

        requests = [
            TransferRequest(
                src=str(arr["src"][i]),
                dst=str(arr["dst"][i]),
                total_bytes=float(arr["nb"][i]),
                n_files=int(arr["nf"][i]),
                n_dirs=int(arr["nd"][i]),
                concurrency=int(arr["c"][i]),
                parallelism=int(arr["p"][i]),
            )
            for i in range(take)
        ]
        prediction = self.predictor.predict_batch_detailed(
            requests, self.data_now)
        for i in range(take):
            elapsed = float(arr["te"][i]) - float(arr["ts"][i])
            nb = float(arr["nb"][i])
            rate = float(prediction.rates[i])
            if elapsed <= 0 or nb <= 0 or not np.isfinite(rate) or rate < 0:
                continue
            self.drift.record(
                str(arr["src"][i]), str(arr["dst"][i]),
                prediction.tiers[i], rate, nb / elapsed)
        self.controller.observe(arr)
        self.applied_digest = fold_digest(self.applied_digest, arr)
        self.applied_records += take
        del self._backlog[:take]
        self.obs.registry.counter(
            "stream_applied_records_total",
            "Backlog rows applied to the serving state.",
        ).inc(take)

        tier_counts: dict[str, int] = {}
        for tier in prediction.tiers:
            name = getattr(tier, "value", str(tier))
            tier_counts[name] = tier_counts.get(name, 0) + 1
        low_tiers = {
            name: n for name, n in tier_counts.items()
            if name not in ("edge", "global")
        }
        if low_tiers and self.events is not None:
            self.events.emit(
                "serve", "tier_fallback", severity="warning",
                records=take, tiers=dict(sorted(low_tiers.items())),
                data_now=self.data_now,
            )
        self._feed_slos(tier_counts, take)
        return take

    def _feed_slos(self, tier_counts: dict[str, int], take: int) -> None:
        """One SLI sample per objective at the batch's data time, then a
        burn-rate evaluation.  Everything recorded here is a function of
        checkpointed state only, so a crash-resumed loop re-derives the
        identical sample series — the alert-determinism contract."""
        if self.slo is None:
            return
        now = self.data_now
        report = self.tail.report
        if report.total_rows:
            self.slo.record(
                "stream_quarantine_rate",
                1.0 - report.kept_rows / report.total_rows, now)
        self.slo.record(
            "stream_checkpoint_staleness", now - self._ckpt_data_now, now)
        self.slo.record(
            "stream_tier0_ratio", tier_counts.get("edge", 0) / take, now)
        overall = self.drift.overall()
        if overall.n:
            self.slo.record("stream_mdape", overall.mdape, now)
        self.slo.evaluate(now)

    def _heartbeat(self) -> None:
        self._last_beat = float(self._clock())
        registry = self.obs.registry
        registry.gauge(
            "stream_last_cycle_unix",
            "Wall-clock time of the last completed cycle.",
        ).set(self._last_beat)
        registry.gauge(
            "stream_backlog_records", "Unapplied backlog rows.",
        ).set(float(len(self._backlog)))
        registry.counter(
            "stream_cycles_total", "Supervisor cycles completed.").inc()

    def run(
        self,
        max_cycles: int | None = None,
        max_seconds: float | None = None,
    ) -> int:
        """Drive the loop until stopped or bounded out; returns cycles
        run.  Always leaves a final checkpoint behind (graceful stop)."""
        started = float(self._clock())
        ran = 0
        while True:
            if self._stop and (not self._drain or not self._backlog):
                break
            if max_cycles is not None and ran >= max_cycles:
                break
            if max_seconds is not None \
                    and float(self._clock()) - started >= max_seconds:
                break
            progressed = self.cycle(poll=not self._stop)
            ran += 1
            if not progressed and not self._stop:
                self._sleep(
                    self.tail.next_delay(self.config.poll_interval_s))
        # Graceful exits leave a parting checkpoint; an exception (a
        # SimulatedCrash, a TailError) propagates without one — the next
        # incarnation recovers from the last durable generation, which is
        # the whole point.
        self.checkpoint()
        return ran

    def request_stop(self, drain: bool = True) -> None:
        self._stop = True
        self._drain = bool(drain)

    # -- introspection ------------------------------------------------------

    def status(self) -> dict:
        age = float(self._clock()) - self._last_beat
        return {
            "cycles": self.cycles,
            "applied_records": self.applied_records,
            "applied_digest": self.applied_digest,
            "backlog_records": len(self._backlog),
            "shed_records": self.shed_records,
            "tail_offset": self.tail.offset,
            "tail_resets": self.tail.resets,
            "quarantined_rows": self.tail.report.quarantined_rows,
            "checkpoint_generation": self._generation,
            "data_now": self.data_now,
            "heartbeat_age_s": age,
            "heartbeat_stale": age > self.config.heartbeat_stale_s,
            "breakers": {
                f"{s}->{d}": breaker.state_dict()
                for (s, d), breaker in sorted(
                    self.controller._breakers.items())
            },
            "event_seq": self.events.seq if self.events is not None else 0,
            "slo": self.slo.status() if self.slo is not None else {},
        }


def read_stream_status(state_dir: str | Path) -> dict:
    """Offline ``stream status``: summarize the newest valid checkpoint
    in ``state_dir`` without constructing a supervisor."""
    loaded = SnapshotStore(Path(state_dir) / "checkpoints").load_latest()
    if loaded is None:
        return {"checkpoint_generation": 0, "recovered": False}
    payload = loaded.payload
    stream = payload.get("stream", {})
    tail = payload.get("tail", {})
    return {
        "recovered": True,
        "checkpoint_generation": loaded.generation,
        "rejected_generations": list(loaded.rejected),
        "applied_records": int(stream.get("applied_records", 0)),
        "applied_digest": str(stream.get("applied_digest", "")),
        "backlog_records": len(stream.get("backlog", ())),
        "shed_records": int(stream.get("shed_records", 0)),
        "cycles": int(stream.get("cycles", 0)),
        "data_now": float(stream.get("data_now", 0.0)),
        "tail_offset": int(tail.get("offset", 0)),
        "tail_rows_kept": int(tail.get("kept_rows", 0)),
        "tail_rows_total": int(tail.get("total_rows", 0)),
        "breakers": {
            f"{s}->{d}": payload_
            for s, d, payload_ in payload.get("retrain", {}).get("breakers", ())
        },
        "event_seq": int(
            payload.get("obs", {}).get("events", {}).get("seq", 0)),
        "slo": {
            "firing": [
                name for name, on in sorted(
                    payload.get("obs", {}).get("slo", {})
                    .get("firing", {}).items())
                if on
            ],
            "alert_seq": int(
                payload.get("obs", {}).get("slo", {}).get("alert_seq", 0)),
            "alert_log": list(
                payload.get("obs", {}).get("slo", {}).get("alert_log", ())),
        },
    }
