"""Tiered fallback prediction: never refuse to answer a rate query.

A production scheduler asks "how fast would this transfer run?" for
*every* candidate placement, including edges that have never been seen
before — §5.1's per-edge models only exist for the ~30 heaviest edges, and
§4.3's noisy logs mean even known edges can lack a usable model.  The
:class:`FallbackChain` arranges every predictor the reproduction has into
a degradation ladder, most specific first:

1. **edge** — the §5.1/§5.2 per-edge model for exactly this (src, dst);
2. **global** — the §5.4 single all-edges model, whose ROmax/RImax extra
   features come from a :class:`~repro.core.pipeline.GlobalFeatureAdapter`
   (usable whenever both endpoints have capability estimates);
3. **analytical** — the Eq. 1 bound ``Rmax <= min(DRmax, MMmax, DWmax)``
   from §3's analytical model, with DRmax/DWmax estimated from the log;
4. **median** — the edge's historical median rate, or the whole log's
   median when the edge itself is unseen;
5. **default** — a configured constant, when literally nothing is known.

:class:`~repro.serve.batch.BatchOnlinePredictor` accepts a chain in place
of a single model and partitions each batch across tiers, so a request on
an unknown edge degrades to a coarser answer instead of raising — and
every prediction is tagged with the :class:`ModelTier` that produced it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.analytical import EndpointMaxima, estimate_endpoint_maxima
from repro.core.pipeline import (
    EdgeModelResult,
    GlobalFeatureAdapter,
    GlobalModelResult,
)
from repro.logs.store import LogStore

__all__ = ["ModelTier", "FallbackChain"]


class ModelTier(enum.Enum):
    """Provenance of a prediction: which rung of the chain produced it.

    ``DEGRADED`` is not a rung of the chain itself — it marks an answer
    the shard router produced *for* an unavailable shard (down, draining,
    or mid-restart) from the chain's model-free tiers.  The rate is a
    normal :meth:`FallbackChain.constant_rate` answer; the tag is the
    explicit provenance that a healthier answer existed but its owner
    was unreachable.
    """

    EDGE = "edge"
    GLOBAL = "global"
    ANALYTICAL = "analytical"
    MEDIAN = "median"
    DEFAULT = "default"
    DEGRADED = "degraded"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class FallbackChain:
    """The degradation ladder a batch predictor walks per request.

    Attributes
    ----------
    edge_models:
        Fitted per-edge models keyed by (src, dst).  May be partially
        populated — that is the point.
    global_model / global_adapter:
        The §5.4 pooled model plus the adapter that supplies its
        per-request ROmax/RImax (and optional distance) columns.  The
        global tier serves a request only when the adapter covers both
        endpoints.
    endpoint_maxima:
        §3.2 per-endpoint DRmax/DWmax estimates feeding the analytical
        tier.
    edge_medians / global_median:
        Historical median rates (bytes/s) per edge and overall.
    default_rate:
        Last-resort constant, bytes/s.
    """

    edge_models: dict[tuple[str, str], EdgeModelResult] = field(default_factory=dict)
    global_model: GlobalModelResult | None = None
    global_adapter: GlobalFeatureAdapter | None = None
    endpoint_maxima: dict[str, EndpointMaxima] = field(default_factory=dict)
    edge_medians: dict[tuple[str, str], float] = field(default_factory=dict)
    global_median: float | None = None
    default_rate: float = 50e6

    def __post_init__(self) -> None:
        if self.default_rate <= 0 or not np.isfinite(self.default_rate):
            raise ValueError("default_rate must be finite and > 0")

    @classmethod
    def from_log(
        cls,
        store: LogStore,
        edge_models: dict[tuple[str, str], EdgeModelResult] | None = None,
        global_model: GlobalModelResult | None = None,
        global_adapter: GlobalFeatureAdapter | None = None,
        default_rate: float = 50e6,
    ) -> "FallbackChain":
        """Derive the model-free tiers (analytical bounds, medians) from a
        historical log, attaching whatever fitted models are available."""
        maxima: dict[str, EndpointMaxima] = {}
        medians: dict[tuple[str, str], float] = {}
        global_median: float | None = None
        if len(store):
            maxima = estimate_endpoint_maxima(store)
            rates = store.rates
            src = store.column("src")
            dst = store.column("dst")
            by_edge: dict[tuple[str, str], list[float]] = {}
            for s, d, r in zip(src, dst, rates):
                by_edge.setdefault((str(s), str(d)), []).append(float(r))
            medians = {e: float(np.median(v)) for e, v in by_edge.items()}
            global_median = float(np.median(rates))
        return cls(
            edge_models=dict(edge_models or {}),
            global_model=global_model,
            global_adapter=global_adapter,
            endpoint_maxima=maxima,
            edge_medians=medians,
            global_median=global_median,
            default_rate=default_rate,
        )

    # -- tier resolution ---------------------------------------------------

    def resolve(self, src: str, dst: str) -> ModelTier:
        """The highest tier that *could* serve a ``src -> dst`` request.

        Informational: the batch predictor performs the same walk but may
        additionally skip an edge model whose features it cannot satisfy
        (see ``BatchOnlinePredictor`` with ``strict=False``).
        """
        if (src, dst) in self.edge_models:
            return ModelTier.EDGE
        if self.global_covers(src, dst):
            return ModelTier.GLOBAL
        if self.analytical_bound(src, dst) is not None:
            return ModelTier.ANALYTICAL
        if (src, dst) in self.edge_medians or self.global_median is not None:
            return ModelTier.MEDIAN
        return ModelTier.DEFAULT

    def global_covers(self, src: str, dst: str) -> bool:
        """Whether the global tier can serve this edge."""
        if self.global_model is None:
            return False
        if self.global_adapter is None:
            # Without an adapter the global model is usable only if it
            # needs no per-request extra columns at all.
            return not any(
                n in ("ROmax_src", "RImax_dst", "distance_km")
                for n in self.global_model.feature_names
            )
        return self.global_adapter.covers(self.global_model, src, dst)

    def analytical_bound(self, src: str, dst: str) -> float | None:
        """Eq. 1's ``min(DRmax, DWmax)`` for the edge, or None if either
        endpoint capability is unknown (MMmax is unobservable from logs and
        treated as non-binding)."""
        s = self.endpoint_maxima.get(src)
        d = self.endpoint_maxima.get(dst)
        if s is None or d is None or s.dr_max <= 0 or d.dw_max <= 0:
            return None
        bound = min(s.dr_max, d.dw_max)
        return bound if np.isfinite(bound) else None

    def describe(self, src: str, dst: str) -> str:
        """One-line provenance summary for an edge (CLI/diagnostic
        output): the tier :meth:`resolve` would pick plus the Eq. 1
        bound, when one is known."""
        tier = self.resolve(src, dst)
        parts = [f"tier={tier.value}"]
        bound = self.analytical_bound(src, dst)
        if bound is not None:
            parts.append(f"Eq. 1 bound {bound:.4g} B/s")
        return ", ".join(parts)

    def constant_rate(self, src: str, dst: str) -> tuple[ModelTier, float]:
        """The model-free answer for an edge: the analytical bound, a
        median, or the default constant — with its provenance tier."""
        bound = self.analytical_bound(src, dst)
        if bound is not None:
            return ModelTier.ANALYTICAL, bound
        median = self.edge_medians.get((src, dst))
        if median is not None and np.isfinite(median) and median > 0:
            return ModelTier.MEDIAN, median
        if self.global_median is not None and self.global_median > 0:
            return ModelTier.MEDIAN, self.global_median
        return ModelTier.DEFAULT, self.default_rate
