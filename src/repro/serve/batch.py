"""Vectorized submission-time rate prediction for request batches.

The scalar :class:`~repro.core.online.OnlinePredictor` answers one request
at a time; a scheduler placing a workflow's worth of transfers needs
thousands of answers per decision point.  :class:`BatchOnlinePredictor`
runs the same duration fix-point — predicted rate determines assumed
duration, which determines overlap scaling, which changes the features —
across a whole batch at once:

- features for all requests are computed in bulk with per-endpoint
  prefix-sum queries (:class:`~repro.serve.active_set.ActiveSet` +
  :class:`~repro.core.contention.ActiveOverlapIndex`) instead of a Python
  loop over every active transfer per request per iteration;
- each request converges on its own schedule: converged elements freeze
  while the rest keep iterating, exactly mirroring the scalar loop, so a
  batch of one is bit-identical to ``OnlinePredictor.predict``;
- :class:`PredictorStats` counts calls, requests, fix-point iterations and
  wall time split between feature computation and model inference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.pipeline import EdgeModelResult, GlobalModelResult
from repro.serve.active_set import ActiveSet
from repro.sim.gridftp import TransferRequest

__all__ = ["BatchOnlinePredictor", "PredictorStats"]

# Contention feature names computed from the active population (the Eq. 2
# estimates; the request-characteristic columns C/P/Nd/Nb/Nf are appended
# separately).
_CONTENTION_NAMES = (
    "K_sout", "K_sin", "K_dout", "K_din",
    "S_sout", "S_sin", "S_dout", "S_din",
    "G_src", "G_dst",
)


@dataclass
class PredictorStats:
    """Lightweight per-predictor instrumentation.

    Attributes
    ----------
    predict_calls:
        Number of ``predict_batch`` invocations.
    requests:
        Total requests predicted across all calls.
    fixpoint_iterations:
        Fix-point rounds executed (each round may cover only the
        not-yet-converged subset of a batch).
    feature_rows:
        Request-rows of features computed (sum of active-subset sizes over
        all rounds).
    feature_time_s / model_time_s:
        Wall time in bulk feature estimation vs scaler+model inference.
    total_time_s:
        End-to-end wall time inside ``predict_batch``.
    """

    predict_calls: int = 0
    requests: int = 0
    fixpoint_iterations: int = 0
    feature_rows: int = 0
    feature_time_s: float = 0.0
    model_time_s: float = 0.0
    total_time_s: float = 0.0

    def reset(self) -> None:
        for f in self.__dataclass_fields__:
            setattr(self, f, type(getattr(self, f))())

    def as_dict(self) -> dict[str, float]:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}

    @property
    def mean_iterations_per_request(self) -> float:
        """Average fix-point feature rows per request (convergence speed)."""
        return self.feature_rows / self.requests if self.requests else 0.0


@dataclass(frozen=True)
class _RequestColumns:
    """The batch, decomposed into feature-ready columns.

    Endpoint grouping (``np.unique`` over the name strings) is computed
    once here; the fix-point then regroups the shrinking not-yet-converged
    subset with cheap integer-code comparisons each round.
    """

    src_endpoints: np.ndarray   # unique source endpoint names
    src_codes: np.ndarray       # per-request index into src_endpoints
    dst_endpoints: np.ndarray
    dst_codes: np.ndarray
    c: np.ndarray
    p: np.ndarray
    nd: np.ndarray
    nb: np.ndarray
    nf: np.ndarray


def _columns(requests: Sequence[TransferRequest]) -> _RequestColumns:
    src_eps, src_codes = np.unique([r.src for r in requests], return_inverse=True)
    dst_eps, dst_codes = np.unique([r.dst for r in requests], return_inverse=True)
    return _RequestColumns(
        src_endpoints=src_eps,
        src_codes=src_codes,
        dst_endpoints=dst_eps,
        dst_codes=dst_codes,
        c=np.array([float(r.concurrency) for r in requests]),
        p=np.array([float(r.parallelism) for r in requests]),
        nd=np.array([float(r.n_dirs) for r in requests]),
        nb=np.array([float(r.total_bytes) for r in requests]),
        nf=np.array([float(r.n_files) for r in requests]),
    )


class BatchOnlinePredictor:
    """Submission-time rate prediction, vectorized across requests.

    Parameters
    ----------
    result:
        A fitted per-edge (:class:`EdgeModelResult`) or global
        (:class:`GlobalModelResult`) pipeline result.
    active:
        The in-flight transfer population (mutate it freely between calls —
        predictions always reflect the current population).
    max_iterations / tolerance:
        Fix-point controls, identical in meaning to
        :class:`~repro.core.online.OnlinePredictor`.
    extra_columns:
        Constant extra features required by the model (e.g. ``ROmax_src``,
        ``RImax_dst`` for the global model).
    initial_rate:
        Starting rate guess for the fix-point, bytes/s.
    """

    def __init__(
        self,
        result: EdgeModelResult | GlobalModelResult,
        active: ActiveSet,
        max_iterations: int = 8,
        tolerance: float = 0.01,
        extra_columns: dict[str, float] | None = None,
        initial_rate: float = 50e6,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be > 0")
        self.result = result
        self.active = active
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.extra_columns = dict(extra_columns or {})
        self.initial_rate = float(initial_rate)
        self.stats = PredictorStats()
        self._names = tuple(result.feature_names)
        missing = [
            n
            for n in self._names
            if n not in _CONTENTION_NAMES
            and n not in ("C", "P", "Nd", "Nb", "Nf")
            and n not in self.extra_columns
        ]
        if missing:
            raise KeyError(
                f"features {missing} required by the model but not provided; "
                "pass them via extra_columns"
            )

    # -- prediction --------------------------------------------------------

    def predict(self, request: TransferRequest, now: float) -> float:
        """Single-request convenience wrapper around :meth:`predict_batch`."""
        return float(self.predict_batch([request], now)[0])

    def predict_batch(
        self, requests: Sequence[TransferRequest], now: float
    ) -> np.ndarray:
        """Predicted average rates (bytes/s) for ``requests`` starting at
        ``now``, one fix-point per request, all vectorized."""
        t0 = time.perf_counter()
        m = len(requests)
        if m == 0:
            return np.zeros(0)
        cols = _columns(requests)
        rates = np.full(m, self.initial_rate)
        alive = np.arange(m)
        for _ in range(self.max_iterations):
            sub_rates = rates[alive]
            durations = np.maximum(1.0, cols.nb[alive] / sub_rates)

            tf = time.perf_counter()
            feats = self._feature_matrix(cols, alive, now, durations)
            self.stats.feature_time_s += time.perf_counter() - tf

            tm = time.perf_counter()
            if isinstance(self.result, EdgeModelResult):
                feats = feats[:, self.result.kept]
            new_rates = np.maximum(
                self.result.model.predict(self.result.scaler.transform(feats)),
                1.0,
            )
            self.stats.model_time_s += time.perf_counter() - tm

            done = np.abs(new_rates - sub_rates) <= self.tolerance * sub_rates
            rates[alive] = new_rates
            self.stats.fixpoint_iterations += 1
            self.stats.feature_rows += int(alive.size)
            alive = alive[~done]
            if alive.size == 0:
                break

        self.stats.predict_calls += 1
        self.stats.requests += m
        self.stats.total_time_s += time.perf_counter() - t0
        return rates

    # -- feature estimation ------------------------------------------------

    def estimate_features(
        self,
        requests: Sequence[TransferRequest],
        now: float,
        durations: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """Bulk equivalent of
        :meth:`~repro.core.online.OnlineFeatureEstimator.estimate`: the
        persistence-assumption feature estimates for every request, as a
        dict of per-request arrays."""
        durations = np.asarray(durations, dtype=np.float64)
        if durations.shape != (len(requests),):
            raise ValueError("durations must have one entry per request")
        if np.any(durations <= 0):
            raise ValueError("assumed durations must be > 0")
        cols = _columns(requests)
        idx = np.arange(len(requests))
        out = self._contention(cols, idx, now, durations)
        out["C"] = cols.c.copy()
        out["P"] = cols.p.copy()
        out["Nd"] = cols.nd.copy()
        out["Nb"] = cols.nb.copy()
        out["Nf"] = cols.nf.copy()
        return out

    def _contention(
        self,
        cols: _RequestColumns,
        idx: np.ndarray,
        now: float,
        durations: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """The ten contention estimates for the requests at ``idx``,
        grouped per endpoint so each prefix-sum index answers one
        vectorized query per role."""
        n = idx.size
        out = {name: np.zeros(n) for name in _CONTENTION_NAMES}
        t_end = now + durations
        for endpoints, codes, (k_out, s_out, k_in, s_in, g) in (
            (cols.src_endpoints, cols.src_codes[idx],
             ("K_sout", "S_sout", "K_sin", "S_sin", "G_src")),
            (cols.dst_endpoints, cols.dst_codes[idx],
             ("K_dout", "S_dout", "K_din", "S_din", "G_dst")),
        ):
            for u in np.unique(codes):
                pos = np.nonzero(codes == u)[0]
                state = self.active.endpoint_state(str(endpoints[u]))
                b = t_end[pos]
                d = durations[pos]
                rate_streams = state.outgoing.overlap_sum(now, b)
                out[k_out][pos] = rate_streams[:, 0] / d
                out[s_out][pos] = rate_streams[:, 1] / d
                rate_streams = state.incoming.overlap_sum(now, b)
                out[k_in][pos] = rate_streams[:, 0] / d
                out[s_in][pos] = rate_streams[:, 1] / d
                out[g][pos] = state.touch_instances.overlap_sum(now, b) / d
        return out

    def _feature_matrix(
        self,
        cols: _RequestColumns,
        idx: np.ndarray,
        now: float,
        durations: np.ndarray,
    ) -> np.ndarray:
        feats = self._contention(cols, idx, now, durations)
        columns = []
        for name in self._names:
            if name in feats:
                columns.append(feats[name])
            elif name == "C":
                columns.append(cols.c[idx])
            elif name == "P":
                columns.append(cols.p[idx])
            elif name == "Nd":
                columns.append(cols.nd[idx])
            elif name == "Nb":
                columns.append(cols.nb[idx])
            elif name == "Nf":
                columns.append(cols.nf[idx])
            else:
                columns.append(np.full(idx.size, self.extra_columns[name]))
        return np.column_stack(columns)
