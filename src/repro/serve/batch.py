"""Vectorized submission-time rate prediction for request batches.

The scalar :class:`~repro.core.online.OnlinePredictor` answers one request
at a time; a scheduler placing a workflow's worth of transfers needs
thousands of answers per decision point.  :class:`BatchOnlinePredictor`
runs the same duration fix-point — predicted rate determines assumed
duration, which determines overlap scaling, which changes the features —
across a whole batch at once:

- features for all requests are computed in bulk with per-endpoint
  prefix-sum queries (:class:`~repro.serve.active_set.ActiveSet` +
  :class:`~repro.core.contention.ActiveOverlapIndex`) instead of a Python
  loop over every active transfer per request per iteration;
- each request converges on its own schedule: converged elements freeze
  while the rest keep iterating, exactly mirroring the scalar loop, so a
  batch of one is bit-identical to ``OnlinePredictor.predict``;
- :class:`PredictorStats` counts calls, requests, fix-point iterations,
  non-converged requests, per-tier predictions, and wall time split
  between feature computation and model inference — each counter a thin
  view over a :class:`~repro.obs.MetricsRegistry` series, so the same
  numbers flow into the Prometheus/JSON metrics export, alongside a
  per-call latency histogram.  Pass an :class:`~repro.obs.Observability`
  bundle via ``obs=`` to share a registry with the rest of the serving
  stack and to emit tracing spans (``serve.predict_batch`` →
  ``serve.route`` / ``serve.tier.*`` → ``serve.columns`` /
  ``serve.fixpoint``) through its tracer.

The predictor also accepts a :class:`~repro.serve.fallback.FallbackChain`
(or a plain ``{(src, dst): EdgeModelResult}`` dict, which is wrapped into
one) in place of a single model.  In that mode ``predict_batch`` never
raises for an unknown edge: requests are partitioned across the chain's
tiers — per-edge model, global model, analytical bound, median, default —
and :meth:`~BatchOnlinePredictor.predict_batch_detailed` reports which
tier served each request.  ``strict=True`` restores the old refuse-loudly
behavior for edges without a usable per-edge model.
"""

from __future__ import annotations

import time
import warnings
from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.pipeline import EdgeModelResult, GlobalModelResult
from repro.ml.forest import forest_totals
from repro.obs import MetricsRegistry, Observability
from repro.obs.tracing import NULL_SPAN
from repro.serve.active_set import (
    _M_IN_RATE,
    _M_IN_STREAMS,
    _M_OUT_RATE,
    _M_OUT_STREAMS,
    _M_TOUCH,
    ActiveSet,
)
from repro.serve.fallback import FallbackChain, ModelTier
from repro.sim.gridftp import TransferRequest

__all__ = ["BatchOnlinePredictor", "BatchPrediction", "PredictorStats"]

# Contention feature names computed from the active population (the Eq. 2
# estimates; the request-characteristic columns C/P/Nd/Nb/Nf are appended
# separately).
_CONTENTION_NAMES = (
    "K_sout", "K_sin", "K_dout", "K_din",
    "S_sout", "S_sin", "S_dout", "S_din",
    "G_src", "G_dst",
)


# PredictorStats field -> (metric name, help, exported type).
_STAT_METRICS: dict[str, tuple[str, str, type]] = {
    "predict_calls": (
        "serve_predict_calls_total", "predict_batch invocations.", int),
    "requests": (
        "serve_requests_total", "Requests predicted across all calls.", int),
    "fixpoint_iterations": (
        "serve_fixpoint_iterations_total",
        "Fix-point rounds executed (each round may cover only the "
        "not-yet-converged subset of a batch).", int),
    "feature_rows": (
        "serve_feature_rows_total",
        "Request-rows of features computed (sum of active-subset sizes "
        "over all rounds).", int),
    "nonconverged_requests": (
        "serve_nonconverged_requests_total",
        "Requests whose fix-point hit max_iterations without stabilising.",
        int),
    "feature_time_s": (
        "serve_feature_seconds_total",
        "Wall time in bulk feature estimation.", float),
    "model_time_s": (
        "serve_model_seconds_total",
        "Wall time in scaler + model inference.", float),
    "total_time_s": (
        "serve_predict_seconds_total",
        "End-to-end wall time inside predict_batch.", float),
    "forest_builds": (
        "ml_forest_builds_total",
        "Flattened GBT forest kernel builds observed during predict calls.",
        int),
    "forest_predict_time_s": (
        "ml_forest_predict_seconds_total",
        "Wall time inside the flattened forest predict kernel during "
        "predict calls.", float),
}

_TIER_METRIC = "serve_tier_predictions_total"
_LATENCY_METRIC = "serve_predict_batch_latency_seconds"


class _TierCounts:
    """Dict-like view over the per-tier prediction counters.

    Behaves like the plain ``{tier: count}`` dict it replaced — equality
    against dicts, truthiness, iteration — but every write lands in the
    registry's ``serve_tier_predictions_total{tier=...}`` counter, so the
    tier mix is visible in the metrics export.  Only tiers touched since
    the last :meth:`clear` appear as keys (the registry keeps exporting
    cleared series at zero, which is what Prometheus expects).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._keys: set[str] = set()

    def _counter(self, tier: str):
        return self._registry.counter(
            _TIER_METRIC,
            "Predictions served per fallback tier.",
            labels={"tier": tier},
        )

    def inc(self, tier: str, n: int) -> None:
        self._counter(tier).inc(n)
        self._keys.add(tier)

    def get(self, tier: str, default: int | None = None) -> int | None:
        if tier not in self._keys:
            return default
        return int(self._counter(tier).value)

    def __getitem__(self, tier: str) -> int:
        if tier not in self._keys:
            raise KeyError(tier)
        return int(self._counter(tier).value)

    def __setitem__(self, tier: str, value: int) -> None:
        self._counter(tier).set_total(float(value))
        self._keys.add(tier)

    def __contains__(self, tier: object) -> bool:
        return tier in self._keys

    def keys(self) -> list[str]:
        return sorted(self._keys)

    def items(self) -> list[tuple[str, int]]:
        return [(k, self[k]) for k in self.keys()]

    def __iter__(self):
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._keys)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _TierCounts):
            return dict(self.items()) == dict(other.items())
        if isinstance(other, Mapping) or isinstance(other, dict):
            return dict(self.items()) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"_TierCounts({dict(self.items())!r})"

    def clear(self) -> None:
        for tier in self._keys:
            self._counter(tier).reset()
        self._keys.clear()


class PredictorStats:
    """Per-predictor instrumentation, backed by a metrics registry.

    Historically a plain dataclass of counters; now a thin view over
    :class:`~repro.obs.MetricsRegistry` series so the same numbers flow
    into the Prometheus/JSON export.  The attribute API is unchanged —
    ``stats.requests += n`` works, ``reset()`` zeroes everything,
    ``as_dict()`` stays flat-numeric — so existing callers and tests are
    unaffected.

    Attributes
    ----------
    predict_calls:
        Number of ``predict_batch`` invocations.
    requests:
        Total requests predicted across all calls.
    fixpoint_iterations:
        Fix-point rounds executed (each round may cover only the
        not-yet-converged subset of a batch).
    feature_rows:
        Request-rows of features computed (sum of active-subset sizes over
        all rounds).
    nonconverged_requests:
        Requests whose fix-point hit ``max_iterations`` without the rate
        stabilising — previously a silent failure mode; the returned rate
        is the last iterate.
    tier_counts:
        Predictions served per :class:`~repro.serve.fallback.ModelTier`
        value (``{"edge": ..., "median": ...}``); single-model predictors
        count everything under their model's own tier.
    feature_time_s / model_time_s:
        Wall time in bulk feature estimation vs scaler+model inference.
    total_time_s:
        End-to-end wall time inside ``predict_batch``.
    latency:
        :class:`~repro.obs.Histogram` of per-``predict_batch`` wall time
        (the p50/p95/p99 reported by serve-bench).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(metric, help_text)
            for name, (metric, help_text, _) in _STAT_METRICS.items()
        }
        self.tier_counts = _TierCounts(self.registry)
        self.latency = self.registry.histogram(
            _LATENCY_METRIC, "predict_batch wall time per call, seconds."
        )

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        self.tier_counts.clear()
        self.latency.reset()

    def count_tier(self, tier: ModelTier, n: int) -> None:
        if n:
            self.tier_counts.inc(tier.value, n)

    def as_dict(self) -> dict[str, float]:
        """Flat numeric dict.  Tier counts expand to ``tier_<name>`` keys
        for *every* tier (0 when unused), so the export schema is stable
        across runs regardless of which tiers happened to fire."""
        out: dict[str, float] = {
            name: getattr(self, name) for name in _STAT_METRICS
        }
        for tier in ModelTier:
            out[f"tier_{tier.value}"] = self.tier_counts.get(tier.value, 0)
        return out

    @property
    def mean_feature_rows_per_request(self) -> float:
        """Average feature rows computed per request — i.e. how many
        fix-point rounds the typical request stayed un-converged for
        (convergence speed; 1.0 means everything converged immediately)."""
        return self.feature_rows / self.requests if self.requests else 0.0

    @property
    def mean_iterations_per_request(self) -> float:
        """Alias for :attr:`mean_feature_rows_per_request`, kept for
        backwards compatibility.  The quantity was always feature *rows*
        per request (the sum of alive-subset sizes over rounds), not the
        number of global fix-point rounds — the old name under-described
        it."""
        return self.mean_feature_rows_per_request


def _stat_property(name: str, metric: str, cast: type) -> property:
    def fget(self: PredictorStats):
        return cast(self._counters[name].value)

    def fset(self: PredictorStats, value) -> None:
        self._counters[name].set_total(float(value))

    return property(fget, fset, doc=f"View over the {metric} counter.")


for _name, (_metric, _help, _cast) in _STAT_METRICS.items():
    setattr(PredictorStats, _name, _stat_property(_name, _metric, _cast))
del _name, _metric, _help, _cast


@dataclass(frozen=True)
class BatchPrediction:
    """One batch's predictions with provenance.

    Attributes
    ----------
    rates:
        Predicted average rates, bytes/s (same order as the requests).
    tiers:
        Per-request :class:`~repro.serve.fallback.ModelTier` provenance.
    nonconverged:
        Boolean mask: True where the fix-point hit ``max_iterations``
        without stabilising (the rate is the last iterate, still finite).
    """

    rates: np.ndarray
    tiers: tuple[ModelTier, ...]
    nonconverged: np.ndarray


@dataclass(frozen=True)
class _RequestColumns:
    """The batch, decomposed into feature-ready columns.

    Endpoint grouping (``np.unique`` over the name strings) is computed
    once here; the fix-point then regroups the shrinking not-yet-converged
    subset with cheap integer-code comparisons each round.
    """

    src_endpoints: np.ndarray   # unique source endpoint names
    src_codes: np.ndarray       # per-request index into src_endpoints
    dst_endpoints: np.ndarray
    dst_codes: np.ndarray
    c: np.ndarray
    p: np.ndarray
    nd: np.ndarray
    nb: np.ndarray
    nf: np.ndarray


def _columns(requests: Sequence[TransferRequest]) -> _RequestColumns:
    if len(requests) == 1:
        # Interactive regime: one request per call.  A single name is its
        # own unique set — skip the two np.unique sorts entirely.
        r = requests[0]
        return _RequestColumns(
            src_endpoints=np.array([r.src]),
            src_codes=np.zeros(1, dtype=np.intp),
            dst_endpoints=np.array([r.dst]),
            dst_codes=np.zeros(1, dtype=np.intp),
            c=np.array([float(r.concurrency)]),
            p=np.array([float(r.parallelism)]),
            nd=np.array([float(r.n_dirs)]),
            nb=np.array([float(r.total_bytes)]),
            nf=np.array([float(r.n_files)]),
        )
    src_eps, src_codes = np.unique([r.src for r in requests], return_inverse=True)
    dst_eps, dst_codes = np.unique([r.dst for r in requests], return_inverse=True)
    return _RequestColumns(
        src_endpoints=src_eps,
        src_codes=src_codes,
        dst_endpoints=dst_eps,
        dst_codes=dst_codes,
        c=np.array([float(r.concurrency) for r in requests]),
        p=np.array([float(r.parallelism) for r in requests]),
        nd=np.array([float(r.n_dirs) for r in requests]),
        nb=np.array([float(r.total_bytes) for r in requests]),
        nf=np.array([float(r.n_files) for r in requests]),
    )


def _model_label(result: EdgeModelResult | GlobalModelResult) -> str:
    if isinstance(result, EdgeModelResult):
        return f"{result.model_kind} edge model {result.src}->{result.dst}"
    return f"{result.model_kind} global model"


class BatchOnlinePredictor:
    """Submission-time rate prediction, vectorized across requests.

    Parameters
    ----------
    result:
        A fitted per-edge (:class:`EdgeModelResult`) or global
        (:class:`GlobalModelResult`) pipeline result — or a
        :class:`~repro.serve.fallback.FallbackChain` (a plain
        ``{(src, dst): EdgeModelResult}`` dict is also accepted and
        wrapped), in which case requests are routed per edge through the
        chain's tiers.
    active:
        The in-flight transfer population (mutate it freely between calls —
        predictions always reflect the current population).
    max_iterations / tolerance:
        Fix-point controls, identical in meaning to
        :class:`~repro.core.online.OnlinePredictor`.
    extra_columns:
        Constant extra features required by the model (e.g. ``ROmax_src``,
        ``RImax_dst`` for the global model).  In chain mode these are
        offered to every tier; the global tier's per-request adapter
        columns take precedence.
    initial_rate:
        Starting rate guess for the fix-point, bytes/s.
    strict:
        Chain mode only: raise ``KeyError`` for a request whose edge has
        no usable per-edge model instead of falling back (the pre-chain
        behavior).
    warn_nonconverged:
        Emit a ``RuntimeWarning`` whenever a call leaves requests
        non-converged (always counted in ``stats.nonconverged_requests``).
    obs:
        Optional :class:`~repro.obs.Observability` bundle.  When given,
        ``stats`` counters land in ``obs.registry`` (one predictor per
        registry — two would sum into the same series) and the predict
        path emits spans through ``obs.tracer``; when omitted the
        predictor keeps a private registry and skips tracing entirely.
    """

    def __init__(
        self,
        result: EdgeModelResult | GlobalModelResult | FallbackChain | Mapping,
        active: ActiveSet,
        max_iterations: int = 8,
        tolerance: float = 0.01,
        extra_columns: dict[str, float] | None = None,
        initial_rate: float = 50e6,
        strict: bool = False,
        warn_nonconverged: bool = False,
        obs: Observability | None = None,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be > 0")
        if isinstance(result, Mapping):
            result = FallbackChain(edge_models=dict(result))
        self.result = result
        self.active = active
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.extra_columns = dict(extra_columns or {})
        self.initial_rate = float(initial_rate)
        self.strict = bool(strict)
        self.warn_nonconverged = bool(warn_nonconverged)
        self.obs = obs
        self.tracer = obs.tracer if obs is not None and obs.tracer is not None \
            and obs.tracer.enabled else None
        self.stats = PredictorStats(obs.registry if obs is not None else None)
        self.unusable_edges: dict[tuple[str, str], str] = {}
        if isinstance(result, FallbackChain):
            self._chain = result
            self._edge_engines: dict[tuple[str, str], BatchOnlinePredictor] = {}
            for edge, edge_result in result.edge_models.items():
                try:
                    engine = BatchOnlinePredictor(
                        edge_result,
                        active,
                        max_iterations=max_iterations,
                        tolerance=tolerance,
                        extra_columns=self.extra_columns,
                        initial_rate=initial_rate,
                    )
                except KeyError as exc:
                    if self.strict:
                        raise
                    # A half-configured model is as unusable as a missing
                    # one: remember why and let its edge fall through.
                    self.unusable_edges[edge] = str(exc).strip("'\"")
                else:
                    # Tier engines share the parent's stats and tracer so
                    # the whole chain reports as one predictor.
                    engine.stats = self.stats
                    engine.tracer = self.tracer
                    self._edge_engines[edge] = engine
        else:
            self._chain = None
            self._check_features(result, self.extra_columns)

    def _check_features(
        self,
        result: EdgeModelResult | GlobalModelResult,
        extra: Mapping[str, object],
    ) -> tuple[str, ...]:
        names = tuple(result.feature_names)
        missing = [
            n
            for n in names
            if n not in _CONTENTION_NAMES
            and n not in ("C", "P", "Nd", "Nb", "Nf")
            and n not in extra
        ]
        if missing:
            raise KeyError(
                f"{_model_label(result)} requires features {missing} that are "
                f"neither contention/request columns nor in extra_columns "
                f"(provided: {sorted(extra) or 'none'}); pass them via "
                "extra_columns or route through a FallbackChain"
            )
        return names

    @property
    def chain(self) -> FallbackChain | None:
        """The :class:`~repro.serve.fallback.FallbackChain` routing this
        predictor's requests, or ``None`` in single-model mode.  The
        advisory layer uses this to look up the Eq. 1 analytical bound
        that caps sweep predictions."""
        return self._chain

    def _span(self, name: str, **attrs):
        """A tracer span, or the shared no-op when tracing is off."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, **attrs)

    # -- prediction --------------------------------------------------------

    def predict(self, request: TransferRequest, now: float) -> float:
        """Single-request convenience wrapper around :meth:`predict_batch`."""
        return float(self.predict_batch([request], now)[0])

    def predict_batch(
        self, requests: Sequence[TransferRequest], now: float
    ) -> np.ndarray:
        """Predicted average rates (bytes/s) for ``requests`` starting at
        ``now``, one fix-point per request, all vectorized."""
        return self.predict_batch_detailed(requests, now).rates

    def predict_batch_detailed(
        self, requests: Sequence[TransferRequest], now: float
    ) -> BatchPrediction:
        """Like :meth:`predict_batch`, but with per-request provenance
        (:class:`ModelTier`) and convergence flags."""
        t0 = time.perf_counter()
        m = len(requests)
        if m == 0:
            return BatchPrediction(np.zeros(0), (), np.zeros(0, dtype=bool))
        forest_before = forest_totals()
        with self._span("serve.predict_batch", requests=m):
            if self._chain is None:
                rates, nonconv = self._fixpoint(self.result, requests, now,
                                                self.extra_columns)
                tier = (
                    ModelTier.EDGE
                    if isinstance(self.result, EdgeModelResult)
                    else ModelTier.GLOBAL
                )
                tiers: tuple[ModelTier, ...] = (tier,) * m
                self.stats.count_tier(tier, m)
            else:
                rates, tiers, nonconv = self._predict_chain(requests, now)

        n_bad = int(nonconv.sum())
        self.stats.nonconverged_requests += n_bad
        if n_bad and self.warn_nonconverged:
            warnings.warn(
                f"{n_bad}/{m} request(s) did not converge within "
                f"{self.max_iterations} fix-point iterations "
                f"(tolerance={self.tolerance})",
                RuntimeWarning,
                stacklevel=3,
            )
        # Attribute the flattened-forest kernel's module totals moved during
        # this call (lazy builds + predict kernel time) to this predictor.
        forest_after = forest_totals()
        d_builds = forest_after["builds"] - forest_before["builds"]
        if d_builds:
            self.stats.forest_builds += d_builds
        d_predict = (
            forest_after["predict_seconds"] - forest_before["predict_seconds"]
        )
        if d_predict > 0.0:
            self.stats.forest_predict_time_s += d_predict
        self.stats.predict_calls += 1
        self.stats.requests += m
        elapsed = time.perf_counter() - t0
        self.stats.total_time_s += elapsed
        self.stats.latency.observe(elapsed)
        flight = self.obs.flight if self.obs is not None else None
        if flight is not None:
            tier_names = [t.value for t in tiers]
            if flight.breach_reason(elapsed, tier_names) is not None:
                # Spans opened by this call all start at or after t0 on
                # the same perf_counter clock, so the tracer's buffer can
                # be sliced by start time — no bookkeeping on the hot
                # path when nothing breaches.
                spans = [
                    rec for rec in (
                        self.tracer.spans() if self.tracer is not None
                        and self.tracer.enabled else ()
                    )
                    if rec.start_s >= t0
                ]
                first = requests[0]
                flight.record(
                    elapsed, tier_names,
                    request={
                        "src": first.src, "dst": first.dst,
                        "total_bytes": float(first.total_bytes),
                        "n_files": int(first.n_files),
                        "concurrency": int(first.concurrency),
                        "parallelism": int(first.parallelism),
                    },
                    active_size=len(self.active),
                    spans=spans,
                    n_nonconverged=n_bad,
                )
        return BatchPrediction(rates, tiers, nonconv)

    def _predict_chain(
        self, requests: Sequence[TransferRequest], now: float
    ) -> tuple[np.ndarray, tuple[ModelTier, ...], np.ndarray]:
        """Partition the batch across the fallback chain's tiers."""
        chain = self._chain
        m = len(requests)
        rates = np.zeros(m)
        nonconv = np.zeros(m, dtype=bool)
        tiers: list[ModelTier] = [ModelTier.DEFAULT] * m
        edge_groups: dict[tuple[str, str], list[int]] = {}
        global_idx: list[int] = []
        with self._span("serve.route", requests=m):
            for i, r in enumerate(requests):
                edge = (r.src, r.dst)
                if edge in self._edge_engines:
                    edge_groups.setdefault(edge, []).append(i)
                    tiers[i] = ModelTier.EDGE
                elif self.strict:
                    known = sorted(f"{s}->{d}" for s, d in self._edge_engines)
                    raise KeyError(
                        f"no usable per-edge model for {r.src}->{r.dst} and "
                        f"strict=True (usable edges: {known or 'none'}); pass "
                        "strict=False to fall back through the chain"
                    )
                elif chain.global_covers(r.src, r.dst):
                    global_idx.append(i)
                    tiers[i] = ModelTier.GLOBAL
                else:
                    tier, rate = chain.constant_rate(r.src, r.dst)
                    tiers[i] = tier
                    rates[i] = rate

        if edge_groups:
            with self._span("serve.tier.edge", edges=len(edge_groups)):
                for edge, idx in edge_groups.items():
                    subset = [requests[i] for i in idx]
                    sub_rates, sub_nonconv = self._edge_engines[edge]._fixpoint(
                        chain.edge_models[edge], subset, now, self.extra_columns
                    )
                    rates[idx] = sub_rates
                    nonconv[idx] = sub_nonconv

        if global_idx:
            with self._span("serve.tier.global", requests=len(global_idx)):
                subset = [requests[i] for i in global_idx]
                extra = dict(self.extra_columns)
                if chain.global_adapter is not None:
                    extra.update(
                        chain.global_adapter.extra_columns(
                            chain.global_model, subset
                        )
                    )
                sub_rates, sub_nonconv = self._fixpoint(
                    chain.global_model, subset, now, extra
                )
                rates[global_idx] = sub_rates
                nonconv[global_idx] = sub_nonconv

        # One Counter pass over the batch instead of one O(m) scan per tier.
        for tier, count in Counter(tiers).items():
            self.stats.count_tier(tier, count)
        return rates, tuple(tiers), nonconv

    def _fixpoint(
        self,
        result: EdgeModelResult | GlobalModelResult,
        requests: Sequence[TransferRequest],
        now: float,
        extra: Mapping[str, object],
    ) -> tuple[np.ndarray, np.ndarray]:
        """The duration fix-point for one model over ``requests``.

        Per-request independence means running a subset of a batch here is
        bit-identical to running it inside the full batch.  Returns
        ``(rates, nonconverged-mask)`` and accumulates into ``self.stats``.
        """
        names = self._check_features(result, extra)
        if isinstance(result, EdgeModelResult):
            # Select the kept columns by name up front: the feature buffer
            # is then built already-filtered, instead of built full-width
            # and sliced (a fresh copy) on every round.
            names = tuple(np.asarray(names, dtype=object)[result.kept])
        m = len(requests)
        with self._span("serve.columns", requests=m):
            cols = _columns(requests)
        # The active set is never mutated inside the fix-point, so each
        # endpoint's prefix-sum state resolves exactly once per call, not
        # once per group per round.
        states = (
            [self.active.endpoint_state(str(e)) for e in cols.src_endpoints],
            [self.active.endpoint_state(str(e)) for e in cols.dst_endpoints],
        )
        # One (m, n_features) buffer serves every round: the alive subset
        # only shrinks, so round r writes rows [0, alive.size) in place and
        # nothing reallocates.
        buf = np.empty((m, len(names)))
        rates = np.full(m, self.initial_rate)
        alive = np.arange(m)
        with self._span("serve.fixpoint", requests=m) as span:
            span.attrs["serve.features.buffer"] = f"{m}x{len(names)}"
            iterations = 0
            for _ in range(self.max_iterations):
                sub_rates = rates[alive]
                durations = np.maximum(1.0, cols.nb[alive] / sub_rates)

                tf = time.perf_counter()
                feats = self._feature_matrix(
                    names, extra, cols, alive, now, durations,
                    states=states, buf=buf[: alive.size],
                )
                self.stats.feature_time_s += time.perf_counter() - tf

                tm = time.perf_counter()
                new_rates = np.maximum(
                    result.model.predict(result.scaler.transform(feats)),
                    1.0,
                )
                self.stats.model_time_s += time.perf_counter() - tm

                done = np.abs(new_rates - sub_rates) <= self.tolerance * sub_rates
                rates[alive] = new_rates
                iterations += 1
                self.stats.fixpoint_iterations += 1
                self.stats.feature_rows += int(alive.size)
                alive = alive[~done]
                if alive.size == 0:
                    break
            span.attrs["iterations"] = iterations
            span.attrs["nonconverged"] = int(alive.size)
        nonconverged = np.zeros(m, dtype=bool)
        nonconverged[alive] = True
        return rates, nonconverged

    # -- feature estimation ------------------------------------------------

    def estimate_features(
        self,
        requests: Sequence[TransferRequest],
        now: float,
        durations: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """Bulk equivalent of
        :meth:`~repro.core.online.OnlineFeatureEstimator.estimate`: the
        persistence-assumption feature estimates for every request, as a
        dict of per-request arrays."""
        durations = np.asarray(durations, dtype=np.float64)
        if durations.shape != (len(requests),):
            raise ValueError("durations must have one entry per request")
        if np.any(durations <= 0):
            raise ValueError("assumed durations must be > 0")
        cols = _columns(requests)
        idx = np.arange(len(requests))
        out = self._contention(cols, idx, now, durations)
        out["C"] = cols.c.copy()
        out["P"] = cols.p.copy()
        out["Nd"] = cols.nd.copy()
        out["Nb"] = cols.nb.copy()
        out["Nf"] = cols.nf.copy()
        return out

    def _contention(
        self,
        cols: _RequestColumns,
        idx: np.ndarray,
        now: float,
        durations: np.ndarray,
        states: tuple[list, list] | None = None,
    ) -> dict[str, np.ndarray]:
        """The ten contention estimates for the requests at ``idx``,
        grouped per endpoint so each prefix-sum index answers one
        vectorized query per role.

        ``states`` is the optional pre-resolved ``(src_states,
        dst_states)`` pair (one :class:`~repro.serve.active_set
        .EndpointState` per unique endpoint, hoisted once per fix-point by
        :meth:`_fixpoint`); when None each group resolves lazily.
        """
        n = idx.size
        # One zeroed backing block; the returned dict holds row views.
        block = np.zeros((len(_CONTENTION_NAMES), n))
        out = {name: block[i] for i, name in enumerate(_CONTENTION_NAMES)}
        t_end = now + durations
        for endpoints, codes, state_list, (k_out, s_out, k_in, s_in, g) in (
            (cols.src_endpoints, cols.src_codes[idx],
             None if states is None else states[0],
             ("K_sout", "S_sout", "K_sin", "S_sin", "G_src")),
            (cols.dst_endpoints, cols.dst_codes[idx],
             None if states is None else states[1],
             ("K_dout", "S_dout", "K_din", "S_din", "G_dst")),
        ):
            # Code-sorted slicing: one stable argsort yields every endpoint
            # group as a contiguous slice (ascending positions, exactly the
            # order np.nonzero(codes == u) produced), replacing one O(n)
            # mask scan per distinct endpoint per round.
            order = np.argsort(codes, kind="stable")
            bounds = np.searchsorted(
                codes[order], np.arange(endpoints.size + 1)
            )
            for u in range(endpoints.size):
                lo, hi = bounds[u], bounds[u + 1]
                if lo == hi:
                    continue
                pos = order[lo:hi]
                state = (
                    state_list[u]
                    if state_list is not None
                    else self.active.endpoint_state(str(endpoints[u]))
                )
                b = t_end[pos]
                d = durations[pos]
                # One query over the endpoint's merged 5-column index
                # answers all five roles (vs three separate index probes);
                # see EndpointState.merged for the bit-identity argument.
                sums = state.merged.window_sums(now, b)
                out[k_out][pos] = sums[:, _M_OUT_RATE] / d
                out[s_out][pos] = sums[:, _M_OUT_STREAMS] / d
                out[k_in][pos] = sums[:, _M_IN_RATE] / d
                out[s_in][pos] = sums[:, _M_IN_STREAMS] / d
                out[g][pos] = sums[:, _M_TOUCH] / d
        return out

    def _feature_matrix(
        self,
        names: Sequence[str],
        extra: Mapping[str, object],
        cols: _RequestColumns,
        idx: np.ndarray,
        now: float,
        durations: np.ndarray,
        states: tuple[list, list] | None = None,
        buf: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fill (and return) the ``(idx.size, len(names))`` feature matrix.

        ``buf`` is the caller's preallocated destination (the fix-point
        reuses one buffer across rounds); when None a fresh array is
        allocated.  Column values are identical to the old per-round
        ``np.column_stack`` construction.
        """
        feats = self._contention(cols, idx, now, durations, states)
        if buf is None:
            buf = np.empty((idx.size, len(names)))
        for j, name in enumerate(names):
            if name in feats:
                buf[:, j] = feats[name]
            elif name == "C":
                buf[:, j] = cols.c[idx]
            elif name == "P":
                buf[:, j] = cols.p[idx]
            elif name == "Nd":
                buf[:, j] = cols.nd[idx]
            elif name == "Nb":
                buf[:, j] = cols.nb[idx]
            elif name == "Nf":
                buf[:, j] = cols.nf[idx]
            else:
                value = extra[name]
                # Adapter-supplied extras are per-request arrays; plain
                # extra_columns entries are batch-wide constants.
                if isinstance(value, np.ndarray):
                    buf[:, j] = value[idx]
                else:
                    buf[:, j] = value
        return buf
