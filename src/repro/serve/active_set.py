"""Incremental in-flight transfer population for online serving.

:class:`ActiveSet` is the serving-side counterpart of the replay-oriented
:class:`~repro.core.online.OnlineFeatureEstimator`: it holds the transfers
currently in flight, keyed by transfer id, and keeps per-endpoint
prefix-sum indexes (:class:`~repro.core.contention.ActiveOverlapIndex`)
ready for bulk feature queries.

Mutations are cheap and local: ``add``/``complete``/``progress`` touch only
the two endpoints the transfer involves, invalidating just those endpoints'
indexes; every other endpoint's state survives untouched.  Indexes are
rebuilt lazily on the next query of a dirtied endpoint, so a burst of
updates between prediction batches costs one rebuild per touched endpoint,
not one per update — and endpoints outside the burst pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.contention import ActiveOverlapIndex
from repro.core.online import ActiveTransferView, active_views_from_log
from repro.logs.store import LogStore
from repro.obs import MetricsRegistry, Observability

__all__ = [
    "ActiveSet",
    "ActiveSetStats",
    "EndpointState",
    "view_to_dict",
    "view_from_dict",
]


def view_to_dict(view: ActiveTransferView) -> dict:
    """JSON-ready encoding of one view (strict JSON: an unknown
    ``expected_end`` — ``inf`` — is encoded as ``None``, since strict
    parsers reject the Infinity token)."""
    return {
        "src": view.src,
        "dst": view.dst,
        "rate": view.rate,
        "started_at": view.started_at,
        "expected_end": (
            None if np.isinf(view.expected_end) else view.expected_end
        ),
        "concurrency": view.concurrency,
        "parallelism": view.parallelism,
        "n_files": view.n_files,
    }


def view_from_dict(d: dict) -> ActiveTransferView:
    """Inverse of :func:`view_to_dict` (full validation re-runs in
    ``ActiveTransferView.__post_init__``)."""
    expected_end = d.get("expected_end")
    return ActiveTransferView(
        src=str(d["src"]),
        dst=str(d["dst"]),
        rate=float(d["rate"]),
        started_at=float(d["started_at"]),
        expected_end=float("inf") if expected_end is None else float(expected_end),
        concurrency=int(d.get("concurrency", 2)),
        parallelism=int(d.get("parallelism", 4)),
        n_files=int(d.get("n_files", 1_000_000)),
    )

# ActiveSetStats field -> (metric name, help).
_ACTIVE_METRICS: dict[str, tuple[str, str]] = {
    "adds": ("active_set_adds_total", "Transfers registered."),
    "completes": ("active_set_completes_total", "Transfers completed/removed."),
    "progress_updates": (
        "active_set_progress_updates_total", "Accepted progress reports."),
    "state_rebuilds": (
        "active_set_state_rebuilds_total",
        "Per-endpoint prefix-sum index rebuilds."),
    "ignored_adds": (
        "active_set_ignored_adds_total", "Duplicate adds dropped (lenient)."),
    "ignored_completes": (
        "active_set_ignored_completes_total",
        "Unknown/duplicate completes dropped (lenient)."),
    "ignored_progress": (
        "active_set_ignored_progress_total",
        "Progress for unknown ids dropped (lenient)."),
    "rejected_progress": (
        "active_set_rejected_progress_total",
        "Progress with invalid values dropped (lenient)."),
}


class ActiveSetStats:
    """Mutation/rebuild counters (cheap observability for the serving path).

    The ``ignored_*``/``rejected_*`` counters only move in lenient mode
    (:class:`ActiveSet` with ``lenient=True``): they count malformed
    mutations that were dropped instead of raising — duplicate ids,
    completions/progress for unknown ids, and progress updates carrying
    non-finite or negative values.

    Like :class:`~repro.serve.batch.PredictorStats`, each field is a view
    over an ``active_set_*_total`` counter in a
    :class:`~repro.obs.MetricsRegistry`, so the same numbers appear in the
    metrics export; the attribute API (``stats.adds += 1``, ``as_dict()``)
    is unchanged.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(metric, help_text)
            for name, (metric, help_text) in _ACTIVE_METRICS.items()
        }

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in _ACTIVE_METRICS}

    @property
    def ignored_total(self) -> int:
        return (
            self.ignored_adds
            + self.ignored_completes
            + self.ignored_progress
            + self.rejected_progress
        )


def _active_stat_property(name: str, metric: str) -> property:
    def fget(self: ActiveSetStats) -> int:
        return int(self._counters[name].value)

    def fset(self: ActiveSetStats, value) -> None:
        self._counters[name].set_total(float(value))

    return property(fget, fset, doc=f"View over the {metric} counter.")


for _name, (_metric, _help) in _ACTIVE_METRICS.items():
    setattr(ActiveSetStats, _name, _active_stat_property(_name, _metric))
del _name, _metric, _help


# Weight columns of EndpointState.merged, in the order the fix-point
# consumes them (out-rate, out-streams, in-rate, in-streams, instances).
_M_OUT_RATE = 0
_M_OUT_STREAMS = 1
_M_IN_RATE = 2
_M_IN_STREAMS = 3
_M_TOUCH = 4
_M_COLS = 5


@dataclass(frozen=True)
class EndpointState:
    """Bulk-query indexes over one endpoint's in-flight transfers.

    Mirrors :class:`~repro.core.contention.ContentionComputer`'s
    per-endpoint view.  ``outgoing`` and ``incoming`` are two-column
    weight indexes (column 0: rate, for the K features; column 1: stream
    count, for S), so one query answers both; ``touch_instances`` covers
    transfers touching the endpoint on either side (the G features).

    ``merged`` stacks all five weightings over the union of touching
    transfers (``_M_*`` column order, zero weight where a transfer does
    not play that role), so the batch fix-point answers one endpoint's
    whole feature row with a single pair of binary searches — zero
    weights add exactly ``0.0`` to every prefix sum, so each column is
    bit-identical to its standalone index.
    """

    outgoing: ActiveOverlapIndex
    incoming: ActiveOverlapIndex
    touch_instances: ActiveOverlapIndex
    merged: ActiveOverlapIndex


def _build_state(
    endpoint: str,
    out_views: list[ActiveTransferView],
    in_views: list[ActiveTransferView],
) -> EndpointState:
    def rate_streams(views: list[ActiveTransferView]) -> ActiveOverlapIndex:
        te = np.array([v.expected_end for v in views], dtype=np.float64)
        w = np.array([(v.rate, v.streams) for v in views], dtype=np.float64)
        return ActiveOverlapIndex(te, w.reshape(len(views), 2))

    # A degenerate self-loop (src == dst == endpoint) appears in both view
    # lists but must count once toward the G (instance) features.
    touching = out_views + [v for v in in_views if v.src != endpoint]
    te = np.array([v.expected_end for v in touching], dtype=np.float64)
    instances = np.array([v.instances for v in touching], dtype=np.float64)
    weights = np.zeros((len(touching), _M_COLS), dtype=np.float64)
    n_out = len(out_views)
    for i, v in enumerate(out_views):
        weights[i, _M_OUT_RATE] = v.rate
        weights[i, _M_OUT_STREAMS] = v.streams
        if v.dst == endpoint:  # self-loop: one row plays both roles
            weights[i, _M_IN_RATE] = v.rate
            weights[i, _M_IN_STREAMS] = v.streams
    for i, v in enumerate(touching[n_out:], start=n_out):
        weights[i, _M_IN_RATE] = v.rate
        weights[i, _M_IN_STREAMS] = v.streams
    weights[:, _M_TOUCH] = instances
    return EndpointState(
        outgoing=rate_streams(out_views),
        incoming=rate_streams(in_views),
        touch_instances=ActiveOverlapIndex(te, instances),
        merged=ActiveOverlapIndex(te, weights),
    )


class ActiveSet:
    """Mutable registry of in-flight transfers with per-endpoint indexes.

    Lifecycle::

        active = ActiveSet()
        active.add(tid, ActiveTransferView(...))      # submission
        active.progress(tid, rate=..., expected_end=...)  # progress report
        active.complete(tid)                          # completion / failure

    Feature queries go through :meth:`endpoint_state`, which returns the
    (lazily rebuilt) prefix-sum indexes for one endpoint.

    By default malformed mutations raise (``KeyError`` for unknown or
    duplicate ids, ``ValueError`` for bad values) — correct for replay,
    where a bad call means a bug.  With ``lenient=True`` they are instead
    idempotently ignored and counted in :attr:`stats`, which is what a
    serving process fed by an at-least-once event stream wants: a
    duplicated completion event must not corrupt endpoint counters or kill
    the server.
    """

    def __init__(
        self, lenient: bool = False, obs: Observability | None = None
    ) -> None:
        self.lenient = bool(lenient)
        self._views: dict[int, ActiveTransferView] = {}
        # endpoint -> insertion-ordered {transfer_id: None} sets.  Dicts keep
        # deterministic ordering, which keeps batch-of-one and batch-of-many
        # prefix sums bit-identical.
        self._by_src: dict[str, dict[int, None]] = {}
        self._by_dst: dict[str, dict[int, None]] = {}
        self._state: dict[str, EndpointState] = {}
        registry = obs.registry if obs is not None else None
        self.stats = ActiveSetStats(registry)
        self.tracer = obs.tracer if obs is not None and obs.tracer is not None \
            and obs.tracer.enabled else None
        self._size_gauge = self.stats.registry.gauge(
            "active_set_size", "In-flight transfers currently tracked."
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_views(cls, views, obs: Observability | None = None) -> "ActiveSet":
        """Build from bare views, assigning sequential ids ``0..n-1``."""
        active = cls(obs=obs)
        for i, v in enumerate(views):
            active.add(i, v)
        active.stats.adds = 0
        return active

    @classmethod
    def from_log_window(
        cls,
        log: LogStore,
        now: float,
        lookback_s: float | None = None,
        exclude_transfer_id: int | None = None,
        obs: Observability | None = None,
    ) -> "ActiveSet":
        """Replay construction: every logged transfer with ``ts <= now < te``
        becomes active, keyed by its logged transfer id (see
        :func:`repro.core.online.active_views_from_log`)."""
        active = cls(obs=obs)
        for tid, view in active_views_from_log(
            log, now, lookback_s=lookback_s,
            exclude_transfer_id=exclude_transfer_id,
        ):
            active.add(tid, view)
        active.stats.adds = 0
        return active

    # -- mutation ----------------------------------------------------------

    def add(self, transfer_id: int, view: ActiveTransferView) -> None:
        """Register a newly started transfer.

        A duplicate id raises ``KeyError`` (strict) or is ignored, keeping
        the original view (lenient) — a replayed start event must not
        double-count the transfer's contention.
        """
        if transfer_id in self._views:
            if self.lenient:
                self.stats.ignored_adds += 1
                return
            raise KeyError(f"transfer {transfer_id} already active")
        self._views[transfer_id] = view
        self._by_src.setdefault(view.src, {})[transfer_id] = None
        self._by_dst.setdefault(view.dst, {})[transfer_id] = None
        self._invalidate(view)
        self.stats.adds += 1
        self._size_gauge.set(len(self._views))

    def complete(self, transfer_id: int) -> ActiveTransferView | None:
        """Remove a finished (or failed) transfer; returns its last view.

        An unknown id (never added, or already completed) raises
        ``KeyError`` (strict) or returns ``None`` (lenient).
        """
        if transfer_id not in self._views and self.lenient:
            self.stats.ignored_completes += 1
            return None
        view = self._pop(transfer_id)
        self.stats.completes += 1
        return view

    def progress(
        self,
        transfer_id: int,
        rate: float | None = None,
        expected_end: float | None = None,
    ) -> ActiveTransferView | None:
        """Update a transfer's observed rate and/or completion estimate.

        Unknown ids and invalid values (non-finite or negative rate, NaN or
        non-increasing expected_end) raise in strict mode; in lenient mode
        the update is dropped — counted as ``ignored_progress`` /
        ``rejected_progress`` — and the stored view stays unchanged.
        """
        if rate is None and expected_end is None:
            raise ValueError("progress needs rate and/or expected_end")
        old = self._views.get(transfer_id)
        if old is None:
            if self.lenient:
                self.stats.ignored_progress += 1
                return None
            raise KeyError(f"transfer {transfer_id} not active")
        changes: dict[str, float] = {}
        if rate is not None:
            changes["rate"] = float(rate)
        if expected_end is not None:
            changes["expected_end"] = float(expected_end)
        try:
            view = replace(old, **changes)
        except ValueError:
            if self.lenient:
                self.stats.rejected_progress += 1
                return old
            raise
        self._views[transfer_id] = view
        self._invalidate(view)
        self.stats.progress_updates += 1
        return view

    def _pop(self, transfer_id: int) -> ActiveTransferView:
        view = self._views.pop(transfer_id, None)
        if view is None:
            raise KeyError(f"transfer {transfer_id} not active")
        self._by_src[view.src].pop(transfer_id, None)
        self._by_dst[view.dst].pop(transfer_id, None)
        self._invalidate(view)
        self._size_gauge.set(len(self._views))
        return view

    def _invalidate(self, view: ActiveTransferView) -> None:
        self._state.pop(view.src, None)
        self._state.pop(view.dst, None)

    # -- queries -----------------------------------------------------------

    def endpoint_state(self, endpoint: str) -> EndpointState:
        """The endpoint's bulk-query indexes (rebuilt only if dirtied)."""
        state = self._state.get(endpoint)
        if state is None:
            span = (
                self.tracer.span("active_set.rebuild", endpoint=endpoint)
                if self.tracer else None
            )
            out_views = [
                self._views[t] for t in self._by_src.get(endpoint, ())
            ]
            in_views = [
                self._views[t] for t in self._by_dst.get(endpoint, ())
            ]
            if span is None:
                state = _build_state(endpoint, out_views, in_views)
            else:
                with span as sp:
                    sp.attrs["transfers"] = len(out_views) + len(in_views)
                    state = _build_state(endpoint, out_views, in_views)
            self._state[endpoint] = state
            self.stats.state_rebuilds += 1
        return state

    def get(self, transfer_id: int) -> ActiveTransferView:
        return self._views[transfer_id]

    def views(self) -> list[ActiveTransferView]:
        """All active views, insertion-ordered."""
        return list(self._views.values())

    def ids(self) -> list[int]:
        return list(self._views)

    def endpoints(self) -> set[str]:
        """Endpoints with at least one in-flight transfer."""
        return {v.src for v in self._views.values()} | {
            v.dst for v in self._views.values()
        }

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, transfer_id: int) -> bool:
        return transfer_id in self._views

    # -- durability --------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready encoding of the in-flight population, insertion-
        ordered — the durability layer's snapshot section.  Ordering is
        part of the contract: restoring preserves it, which keeps the
        per-endpoint prefix sums (and therefore predictions) bit-identical
        to the pre-snapshot process."""
        return {
            "views": [
                [int(tid), view_to_dict(view)]
                for tid, view in self._views.items()
            ],
        }

    def load_snapshot(self, state: dict) -> None:
        """Restore the population from a :meth:`snapshot_state` payload.

        Replaces the current contents wholesale and rebuilds the endpoint
        key maps; indexes stay lazy (rebuilt on first query).  Mutation
        counters are deliberately *not* touched — the durability layer
        restores counter totals separately via
        :meth:`~repro.obs.MetricsRegistry.load_snapshot`, so a restored
        process continues the old totals instead of re-counting them.
        """
        self._views.clear()
        self._by_src.clear()
        self._by_dst.clear()
        self._state.clear()
        for tid, encoded in state.get("views", ()):
            tid = int(tid)
            if tid in self._views:
                raise ValueError(f"snapshot repeats transfer id {tid}")
            view = view_from_dict(encoded)
            self._views[tid] = view
            self._by_src.setdefault(view.src, {})[tid] = None
            self._by_dst.setdefault(view.dst, {})[tid] = None
        self._size_gauge.set(len(self._views))
