"""Throughput and parity benchmark for the sharded serving tier.

:func:`run_shard_bench` times one predict workload twice — through a
:class:`~repro.serve.shard.ShardCluster` of ``N`` workers and through the
single-process :class:`~repro.serve.batch.BatchOnlinePredictor` reference
— and verifies the tier's correctness gates:

- **bit parity**: ``max |cluster - reference|`` rate must be exactly 0
  and no answer may be degraded (every worker was healthy);
- **count-merge equality**: after merging every worker's registry through
  the commutative :meth:`~repro.obs.MetricsRegistry.load_snapshot`,
  request-level counters (``serve_requests_total`` and the per-tier
  ``serve_tier_predictions_total``) must *exactly* equal the reference's
  — sharding may change how work is chunked (per-shard ``predict_calls``
  and fix-point iterations legitimately differ) but never how much work
  was requested or which tier answered.

:func:`run_shard_scaling` sweeps shard counts and reports each count's
speedup over ``--shards 1``; on a single-core box the parallelism gates
are physically unobservable, so scaling is *recorded* (with the core
count) while only the correctness gates decide ``parity_ok``.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs import Observability
from repro.serve.active_set import ActiveSet, view_to_dict
from repro.serve.batch import BatchOnlinePredictor
from repro.serve.bench import (
    make_synthetic_requests,
    make_synthetic_views,
)
from repro.serve.fallback import ModelTier
from repro.serve.shard.chaos import make_chaos_chain
from repro.serve.shard.supervisor import ClusterConfig, ShardCluster

__all__ = ["ShardBenchResult", "run_shard_bench", "run_shard_scaling"]

_COUNT_METRICS = ("serve_requests_total", "serve_tier_predictions_total")


@dataclass(frozen=True)
class ShardBenchResult:
    """One shard count's timings plus the correctness gates."""

    shards: int
    n_active: int
    n_requests: int
    repeats: int
    cluster_time_s: float
    reference_time_s: float
    max_abs_diff: float
    degraded: int
    counts: dict[str, list] = field(default_factory=dict)
    counts_ok: bool = True
    # Full merged cross-shard registry snapshot (router + every worker);
    # carried for the CLI's --metrics-out, deliberately not in as_dict().
    merged_snapshot: dict | None = None

    @property
    def parity_ok(self) -> bool:
        """The hard gate: bit parity + zero degraded + exact count merge."""
        return (self.max_abs_diff == 0.0 and self.degraded == 0
                and self.counts_ok)

    @property
    def cluster_throughput_rps(self) -> float:
        return self.n_requests / self.cluster_time_s \
            if self.cluster_time_s else 0.0

    def render(self) -> str:
        lines = [
            f"shards                    {self.shards}",
            f"active transfers          {self.n_active}",
            f"requests                  {self.n_requests} "
            f"(x{self.repeats} repeats)",
            f"cluster predict           {self.cluster_time_s * 1e3:9.2f} ms "
            f"({self.cluster_throughput_rps:,.0f} req/s)",
            f"single-process reference  "
            f"{self.reference_time_s * 1e3:9.2f} ms",
            f"max |cluster - ref| rate  {self.max_abs_diff:9.3g} B/s",
            f"degraded answers          {self.degraded}",
            f"count-merge equality      "
            f"{'exact' if self.counts_ok else 'MISMATCH'}",
            f"parity                    "
            f"{'OK' if self.parity_ok else 'FAILED'}",
        ]
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "shards": self.shards,
            "n_active": self.n_active,
            "n_requests": self.n_requests,
            "repeats": self.repeats,
            "cluster_time_s": self.cluster_time_s,
            "reference_time_s": self.reference_time_s,
            "cluster_throughput_rps": self.cluster_throughput_rps,
            "max_abs_diff": self.max_abs_diff,
            "degraded": self.degraded,
            "counts_ok": self.counts_ok,
            "counts": self.counts,
            "parity_ok": self.parity_ok,
        }


def _request_counts(registry_snapshot: dict) -> dict[str, list]:
    """The request-level counter series from one registry snapshot,
    sorted for stable comparison."""
    out: dict[str, list] = {}
    for entry in registry_snapshot.get("counters", []):
        if entry["name"] in _COUNT_METRICS:
            out.setdefault(entry["name"], []).append(
                [sorted(entry.get("labels", {}).items()),
                 entry.get("value", 0)])
    for name in out:
        out[name].sort()
    return out


def run_shard_bench(
    shards: int = 2,
    n_active: int = 2_000,
    n_requests: int = 512,
    n_endpoints: int = 24,
    seed: int = 0,
    repeats: int = 3,
    now: float = 0.0,
    state_root: str | Path | None = None,
    obs: Observability | None = None,
) -> ShardBenchResult:
    """Time and verify one shard count against the reference.

    Both paths warm once, then time ``repeats`` identical batches; the
    metric comparison covers *all* predicts (warm + timed) so chunking
    bugs cannot hide in the warm-up.
    """
    if shards < 1 or repeats < 1:
        raise ValueError("shards and repeats must be >= 1")
    chain = make_chaos_chain(n_endpoints, seed=seed)
    views = make_synthetic_views(
        n_active, n_endpoints=n_endpoints, seed=seed, now=now)
    requests = make_synthetic_requests(
        n_requests, n_endpoints=n_endpoints, seed=seed + 1)

    ref_obs = Observability.create(trace=False)
    reference = BatchOnlinePredictor(
        chain, ActiveSet.from_views(views, obs=ref_obs), obs=ref_obs)
    ref_detail = reference.predict_batch_detailed(requests, now)  # warm
    t0 = time.perf_counter()
    for _ in range(repeats):
        ref_rates = reference.predict_batch(requests, now)
    reference_time = (time.perf_counter() - t0) / repeats

    tmp = None
    if state_root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-shard-bench-")
        state_root = tmp.name
    try:
        cluster = ShardCluster(
            chain, state_root, shards=shards, obs=obs,
            config=ClusterConfig(),
        ).start()
        try:
            cluster.apply_mutations([
                ["add", i, view_to_dict(v)] for i, v in enumerate(views)
            ])
            detail = cluster.predict_batch_detailed(requests, now)  # warm
            t0 = time.perf_counter()
            for _ in range(repeats):
                cluster_rates = cluster.predict_batch(requests, now)
            cluster_time = (time.perf_counter() - t0) / repeats
            merged = cluster.collect_metrics().snapshot()
        finally:
            cluster.stop()
    finally:
        if tmp is not None:
            tmp.cleanup()

    degraded = sum(1 for t in detail.tiers if t is ModelTier.DEGRADED)
    max_abs_diff = float(np.max(np.abs(cluster_rates - ref_rates))) \
        if n_requests else 0.0
    warm_diff = float(np.max(np.abs(
        np.asarray(detail.rates) - np.asarray(ref_detail.rates)))) \
        if n_requests else 0.0
    max_abs_diff = max(max_abs_diff, warm_diff)

    ref_counts = _request_counts(ref_obs.registry.snapshot())
    merged_counts = _request_counts(merged)
    counts_ok = ref_counts == merged_counts

    return ShardBenchResult(
        shards=shards,
        n_active=n_active,
        n_requests=n_requests,
        repeats=repeats,
        cluster_time_s=cluster_time,
        reference_time_s=reference_time,
        max_abs_diff=max_abs_diff,
        degraded=degraded,
        counts={"reference": sorted(ref_counts),
                "merged": sorted(merged_counts)},
        counts_ok=counts_ok,
        merged_snapshot=merged,
    )


def run_shard_scaling(
    shard_counts: tuple[int, ...] = (1, 4),
    **kwargs,
) -> dict:
    """Run :func:`run_shard_bench` per shard count and relate them.

    Returns ``{"results": {N: as_dict}, "scaling": t(1)/t(max),
    "scaling_target": 2.5, "cores": os.cpu_count(), "parity_ok": ...}``
    — scaling is recorded honestly (a single-core box cannot show
    parallel speedup) while ``parity_ok`` gates only correctness.
    """
    counts = sorted(set(int(c) for c in shard_counts))
    if not counts:
        raise ValueError("need at least one shard count")
    results = {c: run_shard_bench(shards=c, **kwargs) for c in counts}
    base = results[counts[0]].cluster_time_s
    top = results[counts[-1]].cluster_time_s
    return {
        "results": {c: r.as_dict() for c, r in results.items()},
        "scaling": base / top if top else 0.0,
        "scaling_baseline_shards": counts[0],
        "scaling_at_shards": counts[-1],
        "scaling_target": 2.5,
        "cores": os.cpu_count() or 1,
        "parity_ok": all(r.parity_ok for r in results.values()),
    }
