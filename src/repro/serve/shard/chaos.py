"""Chaos proof for the sharded serving tier.

:func:`run_shard_chaos` drives a :class:`~repro.serve.shard.ShardCluster`
and a single-process reference predictor through the same scripted,
seeded history — mutations, predict batches, SIGKILLs at varying points
(before a mutation batch, between two halves of one, after mutations but
before the predict), a drain, a rebalance, a checkpoint — and asserts
the tier's three contracts after every round:

1. **Every request is answered.**  The router never raises; every rate
   is finite and positive, even while a shard is down or draining.
2. **Answers match the reference bit-exactly, modulo degraded tags.**
   Non-degraded entries equal the single-process
   :class:`~repro.serve.batch.BatchOnlinePredictor` answer with zero
   tolerance; degraded entries appear only when the script made a shard
   unavailable, carry :attr:`~repro.serve.fallback.ModelTier.DEGRADED`,
   and equal the chain's model-free constant answer.
3. **Restarts recover bit-identical state.**  After every round in which
   all shards are up again, every shard's state fingerprint equals every
   other's *and* the reference's — a restarted worker is
   indistinguishable from one that never crashed.

The kill points are script positions rather than asynchronous timers, so
a failing check replays exactly; they still exercise the full failure
surface (crash discovered during mutate broadcast, during predict
dispatch, during checkpoint).
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs import Observability
from repro.serve.active_set import ActiveSet
from repro.serve.batch import BatchOnlinePredictor
from repro.serve.bench import (
    make_synthetic_model,
    make_synthetic_requests,
    make_synthetic_views,
)
from repro.serve.fallback import FallbackChain, ModelTier
from repro.serve.shard.supervisor import ClusterConfig, ShardCluster
from repro.serve.shard.worker import fingerprint_digest

__all__ = ["ShardChaosConfig", "ShardChaosReport", "run_shard_chaos",
           "make_chaos_chain"]


@dataclass(frozen=True)
class ShardChaosConfig:
    """The scripted history one chaos run replays."""

    shards: int = 3
    rounds: int = 6
    n_seed_views: int = 200          # in-flight population at round 0
    n_requests: int = 64             # predict batch per round
    n_endpoints: int = 12
    mutations_per_round: int = 40
    kill_rounds: tuple[int, ...] = (1, 3, 4)
    drain_round: int | None = 2      # drain -> degraded predict -> restart
    rebalance_round: int | None = 5  # snapshot-handoff replacement
    checkpoint_round: int | None = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1 or self.rounds < 1:
            raise ValueError("shards and rounds must be >= 1")
        for r in self.kill_rounds:
            if not 0 <= r < self.rounds:
                raise ValueError(f"kill round {r} outside 0..{self.rounds - 1}")

    @classmethod
    def quick(cls) -> "ShardChaosConfig":
        """The CI smoke variant: 2 shards, 4 rounds, one of each fault."""
        return cls(
            shards=2, rounds=4, n_seed_views=80, n_requests=32,
            mutations_per_round=16, kill_rounds=(1,), drain_round=2,
            rebalance_round=3, checkpoint_round=3,
        )


@dataclass
class ShardChaosReport:
    """Every check the run performed, pass or fail, plus fault totals."""

    shards: int = 0
    rounds: int = 0
    kills: int = 0
    restarts: int = 0
    degraded_answers: int = 0
    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    def check(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append((name, bool(ok), detail))

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(ok for _, ok, _ in self.checks)

    @property
    def failed(self) -> list[tuple[str, bool, str]]:
        return [c for c in self.checks if not c[1]]

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "shards": self.shards,
            "rounds": self.rounds,
            "kills": self.kills,
            "restarts": self.restarts,
            "degraded_answers": self.degraded_answers,
            "checks": [list(c) for c in self.checks],
        }

    def render(self) -> str:
        lines = [
            f"shards                    {self.shards}",
            f"rounds                    {self.rounds}",
            f"workers SIGKILLed         {self.kills}",
            f"supervised restarts       {self.restarts}",
            f"degraded answers          {self.degraded_answers}",
            f"checks                    "
            f"{sum(ok for _, ok, _ in self.checks)}/{len(self.checks)} passed",
        ]
        for name, ok, detail in self.checks:
            mark = "PASS" if ok else "FAIL"
            lines.append(f"  [{mark}] {name}" + (f"  {detail}" if detail else ""))
        lines.append("chaos: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def make_chaos_chain(n_endpoints: int, seed: int = 0) -> FallbackChain:
    """A chain whose edge tier covers *every* edge of the endpoint
    universe (one shared synthetic model), with a median floor so
    degraded answers have a deterministic model-free value."""
    model = make_synthetic_model(seed)
    eps = [f"EP{i:03d}" for i in range(n_endpoints)]
    return FallbackChain(
        edge_models={
            (s, d): model for s in eps for d in eps if s != d
        },
        global_median=2.5e8,
        default_rate=50e6,
    )


class _Reference:
    """The single-process twin: same chain, same mutation history, same
    observability wiring as a worker — the equality baseline."""

    def __init__(self, chain: FallbackChain) -> None:
        self.obs = Observability.create(trace=False)
        self.active = ActiveSet(lenient=True, obs=self.obs)
        self.predictor = BatchOnlinePredictor(chain, self.active, obs=self.obs)

    def apply(self, mutation: list) -> None:
        kind = mutation[0]
        if kind == "add":
            self.active.add(int(mutation[1]), mutation[2])
        elif kind == "progress":
            self.active.progress(
                int(mutation[1]), rate=mutation[2], expected_end=mutation[3])
        elif kind == "complete":
            self.active.complete(int(mutation[1]))
        elif kind == "drift":
            self.obs.drift.record(
                mutation[1], mutation[2], mutation[3],
                mutation[4], mutation[5])
        else:  # pragma: no cover - script bug
            raise ValueError(f"unknown mutation kind {kind!r}")

    def fingerprint(self) -> str:
        return fingerprint_digest({
            "active": self.active.snapshot_state(),
            "drift": self.obs.drift.dump_state(),
        })


class _MutationScript:
    """Seeded mutation generator shared by cluster and reference: adds
    from a pre-built view pool, progress/complete over live transfers,
    drift observations over the endpoint universe."""

    def __init__(self, config: ShardChaosConfig) -> None:
        self.rng = random.Random(config.seed + 1)
        pool_size = config.n_seed_views \
            + config.rounds * config.mutations_per_round
        self.pool = make_synthetic_views(
            pool_size, n_endpoints=config.n_endpoints, seed=config.seed)
        self.next_tid = 0
        self.live: list[int] = []
        self.eps = [f"EP{i:03d}" for i in range(config.n_endpoints)]
        self.tiers = [t.value for t in ModelTier if t is not ModelTier.DEGRADED]

    def _add(self) -> list:
        tid = self.next_tid
        self.next_tid += 1
        self.live.append(tid)
        return ["add", tid, self.pool[tid]]

    def seed_batch(self, n: int) -> list[list]:
        return [self._add() for _ in range(n)]

    def round_batch(self, n: int) -> list[list]:
        out: list[list] = []
        for _ in range(n):
            roll = self.rng.random()
            if roll < 0.4 or not self.live:
                out.append(self._add())
            elif roll < 0.6:
                tid = self.rng.choice(self.live)
                out.append([
                    "progress", tid,
                    self.rng.uniform(1e6, 5e8), None,
                ])
            elif roll < 0.75:
                tid = self.live.pop(self.rng.randrange(len(self.live)))
                out.append(["complete", tid])
            else:
                s, d = self.rng.sample(self.eps, 2)
                out.append([
                    "drift", s, d, self.rng.choice(self.tiers),
                    self.rng.uniform(1e7, 5e8), self.rng.uniform(1e7, 5e8),
                ])
        return out


def _apply(cluster: ShardCluster, ref: _Reference,
           mutations: list[list]) -> None:
    """One mutation batch down both paths.  The cluster wire format
    carries views as dicts; the reference takes the view object itself."""
    from repro.serve.active_set import view_to_dict

    wire = []
    for m in mutations:
        if m[0] == "add":
            wire.append(["add", m[1], view_to_dict(m[2])])
        else:
            wire.append(list(m))
        ref.apply(m)
    cluster.apply_mutations(wire)


def run_shard_chaos(
    config: ShardChaosConfig | None = None,
    state_root: str | Path | None = None,
    obs: Observability | None = None,
    cluster_config: ClusterConfig | None = None,
) -> ShardChaosReport:
    """Run the scripted chaos history; see the module docstring for the
    contracts asserted.  ``obs`` receives the router's ``shard_*``
    metrics and lifecycle events (for the CI artifact upload)."""
    config = config or ShardChaosConfig()
    report = ShardChaosReport(shards=config.shards, rounds=config.rounds)
    rng = random.Random(config.seed)
    chain = make_chaos_chain(config.n_endpoints, seed=config.seed)
    ref = _Reference(chain)
    script = _MutationScript(config)

    tmp = None
    if state_root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-shard-chaos-")
        state_root = tmp.name
    try:
        cluster = ShardCluster(
            chain, state_root, shards=config.shards, obs=obs,
            config=cluster_config or ClusterConfig(),
        ).start()
        try:
            _run_rounds(config, cluster, ref, chain, script, rng, report)
        finally:
            report.restarts = sum(
                row["restarts"] for row in cluster.status())
            cluster.stop()
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report


def _run_rounds(config: ShardChaosConfig, cluster: ShardCluster,
                ref: _Reference, chain: FallbackChain,
                script: _MutationScript,
                rng: random.Random, report: ShardChaosReport) -> None:
    _apply(cluster, ref, script.seed_batch(config.n_seed_views))

    for r in range(config.rounds):
        now = 10_000.0 + 60.0 * r
        requests = make_synthetic_requests(
            config.n_requests, n_endpoints=config.n_endpoints,
            seed=config.seed + 100 + r)
        batch = script.round_batch(config.mutations_per_round)
        half = len(batch) // 2
        kill_point = r % 3 if r in config.kill_rounds else None
        victim = rng.choice(list(cluster.ring.shards))

        if kill_point == 0:
            cluster.kill(victim)
            report.kills += 1
        _apply(cluster, ref, batch[:half])
        if kill_point == 1:
            cluster.kill(victim)
            report.kills += 1
        _apply(cluster, ref, batch[half:])
        if kill_point == 2:
            cluster.kill(victim)
            report.kills += 1

        draining = None
        if r == config.drain_round:
            draining = victim
            cluster.drain(draining)

        if r == config.rebalance_round:
            handoff = cluster.rebalance(victim if draining is None
                                        else _other(cluster, draining, rng))
            report.check(
                f"round {r}: rebalance handoff verified",
                bool(handoff["fingerprint"]),
                f"shard {handoff['shard']} seq {handoff['seq']}")

        result = cluster.predict_batch_detailed(requests, now)
        expected = ref.predictor.predict_batch_detailed(requests, now)
        _check_round(r, cluster, chain, requests, result, expected,
                     draining, report)

        if draining is not None:
            cluster.restart(draining)

        if r == config.checkpoint_round:
            generations = cluster.checkpoint()
            report.check(
                f"round {r}: checkpoint + log compaction",
                len(generations) == config.shards,
                f"generations {generations}, log base {cluster._base}")

        prints = cluster.fingerprints()
        want = ref.fingerprint()
        report.check(
            f"round {r}: state fingerprints bit-identical across "
            f"{len(prints)} shards + reference",
            len(prints) == config.shards
            and all(d == want for d in prints.values()),
            f"reference {want[:12]}…")


def _other(cluster: ShardCluster, not_this: str, rng: random.Random) -> str:
    candidates = [s for s in cluster.ring.shards if s != not_this]
    return rng.choice(candidates) if candidates else not_this


def _check_round(r: int, cluster: ShardCluster, chain: FallbackChain,
                 requests, result, expected, draining: str | None,
                 report: ShardChaosReport) -> None:
    rates = np.asarray(result.rates)
    report.check(
        f"round {r}: every request answered",
        len(rates) == len(requests)
        and bool(np.all(np.isfinite(rates)) and np.all(rates > 0)),
        f"{len(rates)} answers")

    degraded_idx = [i for i, t in enumerate(result.tiers)
                    if t is ModelTier.DEGRADED]
    report.degraded_answers += len(degraded_idx)
    clean = [i for i in range(len(requests)) if i not in set(degraded_idx)]

    diffs = np.abs(rates[clean] - np.asarray(expected.rates)[clean]) \
        if clean else np.zeros(0)
    max_diff = float(diffs.max()) if len(diffs) else 0.0
    report.check(
        f"round {r}: non-degraded answers bit-equal the single-process "
        f"reference",
        max_diff == 0.0
        and all(result.tiers[i] is expected.tiers[i] for i in clean)
        and all(bool(result.nonconverged[i]) == bool(expected.nonconverged[i])
                for i in clean),
        f"{len(clean)} compared, max |diff| {max_diff:g}")

    if draining is None:
        report.check(
            f"round {r}: no degraded answers while all shards serve",
            not degraded_idx, f"{len(degraded_idx)} degraded")
    else:
        own = [i for i in range(len(requests))
               if cluster.ring.lookup(
                   f"{requests[i].src}->{requests[i].dst}") == draining]
        tags_ok = sorted(degraded_idx) == sorted(own)
        values_ok = all(
            rates[i] == chain.constant_rate(requests[i].src,
                                            requests[i].dst)[1]
            for i in degraded_idx)
        report.check(
            f"round {r}: draining shard's requests degrade with explicit "
            f"provenance",
            tags_ok and values_ok,
            f"{len(degraded_idx)} degraded on {draining}")
