"""Shard router + supervisor: the fault-tolerant front of the serving tier.

:class:`ShardCluster` owns a fleet of :mod:`worker <repro.serve.shard.worker>`
processes, one per ring slot, each with its own durable state directory.
It plays three roles at once:

**Router.**  Mutations (transfer add/progress/complete, drift
observations) are appended to an in-memory replication log and broadcast
to every worker — contention state is fully replicated, predictions are
partitioned.  A predict batch is grouped by the consistent-hash ring,
dispatched to all owning shards pipelined (send everything, then collect),
and reassembled in submission order.

**Supervisor.**  Every request carries a deadline.  A timed-out request
is retried through the shared :func:`~repro.exec.retry.retry_call`
backoff helper; a closed pipe or exhausted retries escalates to a
restart: SIGKILL whatever is left of the worker, respawn it on the *same*
state directory, let :func:`~repro.serve.durability.recover_serving_state`
rebuild its state, then replay the replication-log suffix after the
worker's journaled ``last_seq``.  Because exactly one journal record
exists per broadcast mutation, that seq *is* the position in this log —
replay never double-applies, so the restarted shard's state fingerprint
is bit-identical to an uninterrupted replica's.  If even the restart
fails, the shard is marked DOWN and its requests are answered degraded:
the chain's model-free :meth:`~repro.serve.fallback.FallbackChain.constant_rate`
with explicit :attr:`~repro.serve.fallback.ModelTier.DEGRADED` provenance.
No request ever errors.

**Rebalancer.**  :meth:`rebalance` replaces a slot's worker by snapshot
handoff: the old worker checkpoints, its state directory is copied, a new
worker recovers from the copy, the router verifies seq and fingerprint
equality, then flips the slot's handle atomically and retires the old
worker.  :meth:`drain` checkpoints a worker and parks the slot DRAINING
(degraded answers) until :meth:`restart` revives it.

Lifecycle events: ``shard/worker_crash``, ``shard/restarted``,
``shard/restart_failed``, ``shard/degraded_answer``, ``shard/drained``,
``shard/rebalance``.  Router metrics are ``shard_*``-prefixed and merge
with the workers' registries through the commutative
:meth:`~repro.obs.MetricsRegistry.load_snapshot` (see
:meth:`collect_metrics`).
"""

from __future__ import annotations

import enum
import multiprocessing
import os
import shutil
import signal
import socket
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.exec.retry import BackoffPolicy, retry_call
from repro.obs import MetricsRegistry, Observability
from repro.serve.batch import BatchPrediction
from repro.serve.durability import DurabilityConfig
from repro.serve.fallback import FallbackChain, ModelTier
from repro.serve.shard.protocol import (
    ConnectionClosed,
    FrameTimeout,
    ProtocolError,
    recv_frame,
    send_frame,
    wire_float,
)
from repro.serve.shard.ring import HashRing, edge_key
from repro.serve.shard.worker import worker_entry

__all__ = ["ClusterConfig", "ShardCluster", "ShardState", "shard_names"]

_TIER_HELP = "Predictions served per fallback tier."


def shard_names(n: int) -> list[str]:
    """Canonical slot names for an ``n``-shard cluster."""
    if n < 1:
        raise ValueError("need at least one shard")
    return [f"shard-{i}" for i in range(int(n))]


class ShardState(enum.Enum):
    UP = "up"
    DOWN = "down"
    DRAINING = "draining"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ClusterConfig:
    """Supervision policy for one :class:`ShardCluster`."""

    request_timeout_s: float = 10.0   # per predict/fingerprint request
    mutate_timeout_s: float = 10.0    # per mutation chunk
    start_timeout_s: float = 30.0     # spawn -> first ping (covers recovery)
    retry_attempts: int = 3           # per-request attempts before escalating
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(base_s=0.05, max_s=1.0))
    replay_chunk: int = 1024          # mutations per replay frame
    ring_replicas: int = 64
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    lenient: bool = True

    def __post_init__(self) -> None:
        for name in ("request_timeout_s", "mutate_timeout_s",
                     "start_timeout_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        if self.replay_chunk < 1:
            raise ValueError("replay_chunk must be >= 1")


class _Handle:
    """Router-side bookkeeping for one slot's current worker process."""

    def __init__(self, name: str, state_dir: Path) -> None:
        self.name = name
        self.state_dir = state_dir
        self.proc = None
        self.sock: socket.socket | None = None
        self.req_id = 0
        self.acked_seq = 0          # global mutation seq this worker journaled
        self.state = ShardState.DOWN
        self.restarts = 0
        self.incarnation = 0
        self.cached_metrics: dict | None = None

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None


class ShardCluster:
    """Process-per-shard serving tier with supervised failover.

    Parameters
    ----------
    chain:
        The :class:`~repro.serve.fallback.FallbackChain` every worker
        serves (inherited via fork — nothing is pickled).
    state_root:
        Directory under which each shard keeps its WAL/snapshot dir.
    shards:
        Shard count or explicit slot names.
    obs:
        Router-side observability bundle (events + ``shard_*`` metrics).
    """

    def __init__(
        self,
        chain: FallbackChain,
        state_root: str | Path,
        shards: int | Sequence[str] = 2,
        obs: Observability | None = None,
        config: ClusterConfig | None = None,
    ) -> None:
        names = shard_names(shards) if isinstance(shards, int) \
            else list(shards)
        self.chain = chain
        self.state_root = Path(state_root)
        self.config = config or ClusterConfig()
        self.obs = obs if obs is not None else Observability.create(trace=False)
        self.registry: MetricsRegistry = self.obs.registry
        self.ring = HashRing(names, replicas=self.config.ring_replicas)
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "ShardCluster needs the fork start method") from exc
        self._handles: dict[str, _Handle] = {
            name: _Handle(name, self.state_root / name) for name in names
        }
        # The replication log: mutation i (0-based) has global seq
        # _base + i + 1.  Compaction after a cluster-wide checkpoint drops
        # the prefix every worker has journaled.
        self._mutations: list[list] = []
        self._base = 0
        self._started = False

        counter, gauge = self.registry.counter, self.registry.gauge
        self._m_mutations = counter(
            "shard_mutations_total",
            "Mutations appended to the replication log.")
        self._m_rebalances = counter(
            "shard_rebalances_total", "Snapshot-handoff rebalances.")
        self._m_requests = {
            n: counter("shard_requests_total",
                       "Predict requests routed to the shard.",
                       labels={"shard": n}) for n in names}
        self._m_retries = {
            n: counter("shard_retries_total",
                       "Per-request retries against the shard.",
                       labels={"shard": n}) for n in names}
        self._m_restarts = {
            n: counter("shard_restarts_total",
                       "Supervised restarts of the shard.",
                       labels={"shard": n}) for n in names}
        self._m_degraded = {
            n: counter("shard_degraded_answers_total",
                       "Requests answered degraded for the shard.",
                       labels={"shard": n}) for n in names}
        self._g_up = {
            n: gauge("shard_up", "1 while the shard worker is serving.",
                     labels={"shard": n}) for n in names}
        self._g_seq = {
            n: gauge("shard_acked_seq",
                     "Newest replication-log seq the shard journaled.",
                     labels={"shard": n}) for n in names}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardCluster":
        """Spawn every worker and handshake.  Pre-existing state dirs are
        recovered; all shards must then agree on ``last_seq`` (a cluster
        killed mid-broadcast left replicas diverged beyond what an empty
        replication log can reconcile)."""
        if self._started:
            return self
        for handle in self._handles.values():
            self._spawn(handle)
        seqs = {h.name: h.acked_seq for h in self._handles.values()}
        if len(set(seqs.values())) > 1:
            self.stop()
            raise ValueError(
                f"shards disagree on journaled seq {seqs}; replicas "
                "diverged before this cluster existed — rebuild the "
                "lagging state dirs from a checkpoint of the newest")
        self._base = next(iter(seqs.values()), 0)
        self._started = True
        return self

    def _spawn(self, handle: _Handle) -> None:
        """Fork one worker for ``handle`` and wait for its readiness ping."""
        parent_sock, child_sock = socket.socketpair()
        # fd hygiene (fork inherits everything): the child closes the
        # parent end of its own pipe and of every sibling's, so a killed
        # worker's pipe actually reads as closed at the router.
        close_fds = [parent_sock.fileno()] + [
            h.sock.fileno() for h in self._handles.values()
            if h.sock is not None
        ]
        proc = self._mp.Process(
            target=worker_entry,
            args=(handle.name, child_sock, str(handle.state_dir),
                  self.chain, self.config.durability, self.config.lenient,
                  tuple(close_fds)),
            daemon=True,
            name=f"repro-shard-{handle.name}",
        )
        proc.start()
        child_sock.close()
        handle.proc = proc
        handle.sock = parent_sock
        try:
            reply = self._request(
                handle, {"op": "ping"}, self.config.start_timeout_s)
        except ProtocolError:
            self._reap(handle)
            handle.state = ShardState.DOWN
            self._g_up[handle.name].set(0)
            raise
        handle.acked_seq = int(reply["last_seq"])
        handle.state = ShardState.UP
        self._g_up[handle.name].set(1)
        self._g_seq[handle.name].set(handle.acked_seq)

    def stop(self) -> None:
        """Graceful shutdown: ask each live worker to exit, then make sure."""
        for handle in self._handles.values():
            if handle.sock is not None and handle.state is ShardState.UP:
                try:
                    self._request(handle, {"op": "shutdown"}, 2.0)
                except ProtocolError:
                    pass
            self._reap(handle)
            handle.state = ShardState.DOWN
            self._g_up[handle.name].set(0)
        self._started = False

    def _reap(self, handle: _Handle) -> None:
        """Ensure the slot's current process is dead and its pipe closed
        (a hung worker must not share a state dir with its successor)."""
        if handle.proc is not None:
            if handle.proc.is_alive():
                try:
                    os.kill(handle.proc.pid, signal.SIGKILL)
                except OSError:
                    pass
            handle.proc.join(timeout=5.0)
            handle.proc = None
        if handle.sock is not None:
            try:
                handle.sock.close()
            except OSError:
                pass
            handle.sock = None

    def __enter__(self) -> "ShardCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- framed request/response ------------------------------------------

    def _request(self, handle: _Handle, payload: dict,
                 timeout: float) -> dict:
        """One request/response exchange.  Replies are matched by ``id``;
        stale replies (from a request that timed out earlier) are
        discarded, so a retry never pairs with the wrong answer."""
        handle.req_id += 1
        send_frame(handle.sock, {**payload, "id": handle.req_id})
        while True:
            reply = recv_frame(handle.sock, timeout)
            if reply.get("id") == handle.req_id:
                break
        if "error" in reply:
            raise ProtocolError(
                f"{handle.name} failed {payload.get('op')!r}: "
                f"{reply['error']}")
        return reply

    def _request_retry(self, handle: _Handle, payload: dict,
                       timeout: float) -> dict:
        """``_request`` behind the shared backoff helper: timeouts are
        retried (the worker may just be slow under load); a closed pipe
        is not (the worker is gone — escalate immediately)."""
        def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
            self._m_retries[handle.name].inc()

        return retry_call(
            lambda: self._request(handle, payload, timeout),
            max_attempts=self.config.retry_attempts,
            policy=self.config.backoff,
            retry_on=(FrameTimeout,),
            on_retry=on_retry,
        )

    # -- mutations (broadcast + replay) ------------------------------------

    def add(self, transfer_id: int, view) -> None:
        from repro.serve.active_set import view_to_dict

        self._broadcast([["add", int(transfer_id), view_to_dict(view)]])

    def progress(self, transfer_id: int, rate: float | None = None,
                 expected_end: float | None = None) -> None:
        self._broadcast([[
            "progress", int(transfer_id),
            wire_float(rate), wire_float(expected_end),
        ]])

    def complete(self, transfer_id: int) -> None:
        self._broadcast([["complete", int(transfer_id)]])

    def record_drift(self, src: str, dst: str, tier, predicted_rate: float,
                     realized_rate: float) -> None:
        tier_name = getattr(tier, "value", None) or str(tier)
        self._broadcast([[
            "drift", str(src), str(dst), str(tier_name),
            float(predicted_rate), float(realized_rate),
        ]])

    def add_views(self, views: Sequence) -> None:
        """Bulk-register views with sequential ids ``0..n-1`` (mirrors
        :meth:`ActiveSet.from_views`), one broadcast frame per shard."""
        from repro.serve.active_set import view_to_dict

        self._broadcast([
            ["add", i, view_to_dict(v)] for i, v in enumerate(views)
        ])

    def apply_mutations(self, mutations: list[list]) -> None:
        """Broadcast pre-encoded wire mutations (the chaos harness and
        bulk loaders build these directly)."""
        self._broadcast([list(m) for m in mutations])

    @property
    def seq(self) -> int:
        """The global mutation sequence (log head)."""
        return self._base + len(self._mutations)

    def _broadcast(self, mutations: list[list]) -> None:
        self._mutations.extend(mutations)
        self._m_mutations.inc(len(mutations))
        for handle in self._handles.values():
            if handle.state is not ShardState.UP:
                continue
            try:
                self._send_pending(handle)
            except ProtocolError as exc:
                self._recover_shard(handle, context="mutate", error=exc)

    def _send_pending(self, handle: _Handle) -> None:
        """Drive ``handle`` from its journaled seq to the log head in
        chunks.  The worker's reply carries its durable ``last_seq``, so
        progress is measured by what actually hit the journal — a lost
        ack never causes a double-send."""
        target = self.seq
        while handle.acked_seq < target:
            start = handle.acked_seq - self._base
            if start < 0:
                raise RuntimeError(
                    f"{handle.name} is behind the compacted log "
                    f"(acked {handle.acked_seq}, base {self._base})")
            chunk = self._mutations[start:start + self.config.replay_chunk]
            reply = self._request(
                handle, {"op": "mutate", "mutations": chunk},
                self.config.mutate_timeout_s)
            new_seq = int(reply["last_seq"])
            if new_seq <= handle.acked_seq:
                raise ProtocolError(
                    f"{handle.name} did not advance past seq "
                    f"{handle.acked_seq}")
            handle.acked_seq = new_seq
            self._g_seq[handle.name].set(new_seq)

    # -- failure handling --------------------------------------------------

    def _emit(self, name: str, severity: str = "info", **attrs) -> None:
        if self.obs.events is not None:
            self.obs.events.emit("shard", name, severity=severity, **attrs)

    def _recover_shard(self, handle: _Handle, context: str,
                       error: BaseException) -> bool:
        """Crash/hang escalation: declare, restart, replay.  Returns True
        when the shard is serving again; on False it is DOWN and its
        requests degrade until :meth:`restart`."""
        self._emit(
            "worker_crash", severity="error",
            shard=handle.name, context=context, pid=handle.pid,
            error=f"{type(error).__name__}: {error}")
        try:
            self._restart_handle(handle)
            return True
        except ProtocolError as exc:
            handle.state = ShardState.DOWN
            self._g_up[handle.name].set(0)
            self._emit(
                "restart_failed", severity="critical",
                shard=handle.name, error=f"{type(exc).__name__}: {exc}")
            return False

    def _restart_handle(self, handle: _Handle) -> None:
        before = handle.acked_seq
        self._reap(handle)
        handle.incarnation += 1
        handle.restarts += 1
        self._m_restarts[handle.name].inc()
        self._spawn(handle)            # recovery sets acked_seq = journaled
        self._send_pending(handle)     # replay strictly after it
        self._emit(
            "restarted",
            shard=handle.name, pid=handle.pid,
            recovered_seq=before, replayed=handle.acked_seq - before,
            restarts=handle.restarts, incarnation=handle.incarnation)

    def kill(self, name: str) -> None:
        """SIGKILL a worker *without* telling the router (chaos input:
        the failure is discovered through the protocol, exactly like a
        real crash)."""
        handle = self._handles[name]
        if handle.proc is None or not handle.proc.is_alive():
            return
        os.kill(handle.proc.pid, signal.SIGKILL)
        handle.proc.join(timeout=5.0)

    def restart(self, name: str) -> None:
        """Operator-initiated revive of a DOWN or DRAINING shard."""
        handle = self._handles[name]
        self._restart_handle(handle)

    def drain(self, name: str) -> None:
        """Checkpoint a shard and park its slot DRAINING: the worker
        exits cleanly and the slot's requests degrade until
        :meth:`restart`."""
        handle = self._handles[name]
        if handle.state is not ShardState.UP:
            raise ValueError(f"{name} is {handle.state}, cannot drain")
        reply = self._request_retry(
            handle, {"op": "drain"}, self.config.start_timeout_s)
        self._reap(handle)
        handle.state = ShardState.DRAINING
        self._g_up[handle.name].set(0)
        self._emit("drained", shard=name,
                   generation=reply.get("generation"),
                   last_seq=reply.get("last_seq"))

    # -- rebalance (snapshot handoff) --------------------------------------

    def rebalance(self, name: str) -> dict:
        """Replace a slot's worker by snapshot handoff.

        The old worker checkpoints; its state directory is copied; a new
        worker recovers from the copy; the router verifies the recruit
        reports the same journaled seq and state fingerprint; only then
        does the slot flip to the new handle (atomic — a single dict
        entry) and the old worker retire.  Returns a summary dict.
        """
        handle = self._handles[name]
        if handle.state is not ShardState.UP:
            raise ValueError(f"{name} is {handle.state}, cannot rebalance")
        self._send_pending(handle)     # hand off the log head, not a prefix
        self._request_retry(
            handle, {"op": "checkpoint"}, self.config.start_timeout_s)
        digest = self._request_retry(
            handle, {"op": "fingerprint"},
            self.config.request_timeout_s)["fingerprint"]

        new_dir = self.state_root / f"{name}.gen{handle.incarnation + 1}"
        if new_dir.exists():
            shutil.rmtree(new_dir)
        shutil.copytree(handle.state_dir, new_dir)

        recruit = _Handle(name, new_dir)
        recruit.restarts = handle.restarts
        recruit.incarnation = handle.incarnation + 1
        try:
            # The old handle stays registered during the spawn (fd hygiene
            # walks self._handles); the recruit flips in only after it
            # proves itself.
            self._spawn(recruit)
            if recruit.acked_seq != handle.acked_seq:
                raise ProtocolError(
                    f"handoff seq mismatch: old {handle.acked_seq}, "
                    f"new {recruit.acked_seq}")
            new_digest = self._request_retry(
                recruit, {"op": "fingerprint"},
                self.config.request_timeout_s)["fingerprint"]
            if new_digest != digest:
                raise ProtocolError(
                    f"handoff fingerprint mismatch on {name}")
        except ProtocolError:
            self._reap(recruit)
            shutil.rmtree(new_dir, ignore_errors=True)
            raise
        # Flip: one assignment, no window where the slot has no owner.
        self._handles[name] = recruit
        try:
            self._request(handle, {"op": "shutdown"}, 2.0)
        except ProtocolError:
            pass
        self._reap(handle)
        self._m_rebalances.inc()
        self._emit("rebalance", shard=name, fingerprint=digest,
                   seq=recruit.acked_seq, state_dir=str(new_dir),
                   incarnation=recruit.incarnation)
        return {"shard": name, "fingerprint": digest,
                "seq": recruit.acked_seq, "state_dir": str(new_dir)}

    # -- prediction --------------------------------------------------------

    def predict_batch_detailed(self, requests: Sequence,
                               now: float) -> BatchPrediction:
        """Route a batch across the ring and reassemble in submission
        order.  Unreachable shards degrade (after retry + restart) rather
        than error; degraded entries carry ``ModelTier.DEGRADED``."""
        m = len(requests)
        rates = np.zeros(m)
        nonconv = np.zeros(m, dtype=bool)
        tiers: list[ModelTier] = [ModelTier.DEFAULT] * m

        groups: dict[str, list[int]] = {}
        for i, r in enumerate(requests):
            groups.setdefault(
                self.ring.lookup(edge_key(r.src, r.dst)), []).append(i)

        # Phase 1: pipeline — send every UP shard its sub-batch before
        # collecting any reply, so workers compute in parallel.
        pending: list[tuple[_Handle, dict, int, list[int]]] = []
        degraded: list[tuple[str, list[int]]] = []
        for name, idxs in sorted(groups.items()):
            handle = self._handles[name]
            frame = {
                "op": "predict",
                "now": float(now),
                "requests": [_request_to_dict(requests[i]) for i in idxs],
            }
            if handle.state is not ShardState.UP:
                degraded.append((name, idxs))
                continue
            handle.req_id += 1
            try:
                send_frame(handle.sock, {**frame, "id": handle.req_id})
                pending.append((handle, frame, handle.req_id, idxs))
            except ConnectionClosed as exc:
                if self._recover_shard(handle, context="predict", error=exc):
                    pending.append((handle, frame, None, idxs))
                else:
                    degraded.append((name, idxs))

        # Phase 2: collect, retry, escalate, degrade — per shard.
        for handle, frame, req_id, idxs in pending:
            reply = self._collect(handle, frame, req_id)
            if reply is None:
                degraded.append((handle.name, idxs))
                continue
            self._m_requests[handle.name].inc(len(idxs))
            for j, i in enumerate(idxs):
                rates[i] = float(reply["rates"][j])
                tiers[i] = ModelTier(reply["tiers"][j])
                nonconv[i] = bool(reply["nonconverged"][j])

        for name, idxs in degraded:
            self._m_degraded[name].inc(len(idxs))
            self.registry.counter(
                "serve_tier_predictions_total", _TIER_HELP,
                labels={"tier": ModelTier.DEGRADED.value},
            ).inc(len(idxs))
            self._emit("degraded_answer", severity="warning",
                       shard=name, requests=len(idxs))
            for i in idxs:
                _, rate = self.chain.constant_rate(
                    requests[i].src, requests[i].dst)
                rates[i] = rate
                tiers[i] = ModelTier.DEGRADED

        return BatchPrediction(
            rates=rates, tiers=tuple(tiers), nonconverged=nonconv)

    def predict_batch(self, requests: Sequence, now: float) -> np.ndarray:
        return self.predict_batch_detailed(requests, now).rates

    def _collect(self, handle: _Handle, frame: dict,
                 req_id: int | None) -> dict | None:
        """Get one predict reply, whatever it takes: await the pipelined
        send (if any), retry timeouts with backoff, restart a dead or
        unresponsive worker and re-ask once.  ``None`` means degrade."""
        try:
            if req_id is not None:
                try:
                    while True:
                        reply = recv_frame(
                            handle.sock, self.config.request_timeout_s)
                        if reply.get("id") == req_id:
                            break
                    if "error" in reply:
                        raise ProtocolError(
                            f"{handle.name} failed 'predict': "
                            f"{reply['error']}")
                    return reply
                except FrameTimeout:
                    self._m_retries[handle.name].inc()
                    return self._request_retry(
                        handle, frame, self.config.request_timeout_s)
            return self._request_retry(
                handle, frame, self.config.request_timeout_s)
        except ProtocolError as exc:
            if not self._recover_shard(handle, context="predict", error=exc):
                return None
            try:
                return self._request_retry(
                    handle, frame, self.config.request_timeout_s)
            except ProtocolError as exc2:
                self._recover_shard(handle, context="predict", error=exc2)
                return None

    # -- checkpoints, fingerprints, metrics --------------------------------

    def checkpoint(self) -> dict[str, int]:
        """Snapshot every UP shard, then compact the replication log up
        to the oldest journaled seq across *all* slots (a DOWN slot's
        frozen seq pins the tail it still needs for replay)."""
        generations: dict[str, int] = {}
        for handle in list(self._handles.values()):
            if handle.state is not ShardState.UP:
                continue
            try:
                self._send_pending(handle)
                reply = self._request_retry(
                    handle, {"op": "checkpoint"},
                    self.config.start_timeout_s)
                generations[handle.name] = int(reply["generation"])
            except ProtocolError as exc:
                self._recover_shard(handle, context="checkpoint", error=exc)
        floor = min(h.acked_seq for h in self._handles.values())
        drop = floor - self._base
        if drop > 0:
            del self._mutations[:drop]
            self._base = floor
        return generations

    def fingerprints(self) -> dict[str, str]:
        """State digests of every UP shard (after driving each to the log
        head, so equal digests mean equal replicas *now*)."""
        out: dict[str, str] = {}
        for handle in self._handles.values():
            if handle.state is not ShardState.UP:
                continue
            self._send_pending(handle)
            out[handle.name] = self._request_retry(
                handle, {"op": "fingerprint"},
                self.config.request_timeout_s)["fingerprint"]
        return out

    def collect_metrics(self) -> MetricsRegistry:
        """Merge the router's registry with every worker's into a fresh
        one (``load_snapshot`` is commutative and associative, so shard
        order cannot change the export).  A DOWN shard contributes its
        last collected snapshot, if any."""
        merged = MetricsRegistry()
        merged.load_snapshot(self.registry.snapshot())
        for handle in self._handles.values():
            if handle.state is ShardState.UP:
                try:
                    handle.cached_metrics = self._request_retry(
                        handle, {"op": "metrics"},
                        self.config.request_timeout_s)["registry"]
                except ProtocolError as exc:
                    self._recover_shard(
                        handle, context="metrics", error=exc)
            if handle.cached_metrics is not None:
                merged.load_snapshot(handle.cached_metrics)
        return merged

    def status(self) -> list[dict]:
        """One row per slot for the CLI/top shard panel."""
        return [
            {
                "shard": h.name,
                "state": h.state.value,
                "pid": h.pid,
                "restarts": h.restarts,
                "incarnation": h.incarnation,
                "acked_seq": h.acked_seq,
                "state_dir": str(h.state_dir),
            }
            for h in self._handles.values()
        ]


def _request_to_dict(r) -> dict:
    return {
        "src": r.src,
        "dst": r.dst,
        "total_bytes": float(r.total_bytes),
        "n_files": int(r.n_files),
        "n_dirs": int(r.n_dirs),
        "concurrency": int(r.concurrency),
        "parallelism": int(r.parallelism),
    }
