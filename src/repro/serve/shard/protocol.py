"""Length-framed request/response frames between router and workers.

One frame is ``u32 payload-length || u32 CRC-32 || payload`` (network
byte order), the same framing discipline as the durability journal: a
fixed header that bounds the read, a checksum that catches a torn or
corrupted pipe, and a strict-JSON payload so every value survives the
hop bit-exactly (Python's JSON float encoding is shortest-round-trip,
so a predicted rate crosses the socket without losing a ULP).

The transport is a ``socket.socketpair()`` stream per worker.  All
errors funnel into :class:`ProtocolError` subclasses the router can
treat uniformly as "this worker is gone or lying": a half-closed pipe
(:class:`ConnectionClosed`, the usual symptom of a SIGKILLed worker), a
blown deadline (:class:`FrameTimeout`, the symptom of a hung one), or a
corrupt frame.
"""

from __future__ import annotations

import json
import math
import socket
import struct
import zlib

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ConnectionClosed",
    "FrameTimeout",
    "send_frame",
    "recv_frame",
    "wire_float",
    "unwire_float",
]

_HEADER = struct.Struct(">II")

# Hard frame bound: a predict batch of ~100k requests still fits, while a
# corrupted length field cannot make the receiver allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer sent something unusable (or nothing at all)."""


class ConnectionClosed(ProtocolError):
    """The peer's end of the pipe is gone — dead or exited worker."""


class FrameTimeout(ProtocolError):
    """No complete frame arrived within the deadline — hung worker."""


def wire_float(value: float | None) -> float | str | None:
    """Encode a float for a strict-JSON frame: finite floats pass through
    (shortest-round-trip, bit-exact), non-finite ones become their
    ``repr`` string (``"inf"``/``"-inf"``/``"nan"``) since strict JSON
    has no spelling for them, ``None`` stays ``None``."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else repr(value)


def unwire_float(value: float | str | None) -> float | None:
    """Inverse of :func:`wire_float`."""
    if value is None:
        return None
    return float(value)


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Frame and send one JSON payload (blocking, whole frame)."""
    data = json.dumps(
        payload, separators=(",", ":"), sort_keys=True, allow_nan=False
    ).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    try:
        sock.sendall(_HEADER.pack(len(data), zlib.crc32(data)) + data)
    except OSError as exc:
        raise ConnectionClosed(f"send failed: {exc!r}") from exc


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except socket.timeout as exc:
            raise FrameTimeout(
                f"no frame within {sock.gettimeout():g}s"
            ) from exc
        except OSError as exc:
            raise ConnectionClosed(f"recv failed: {exc!r}") from exc
        if not chunk:
            raise ConnectionClosed("peer closed the pipe mid-frame"
                                   if buf else "peer closed the pipe")
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket, timeout: float | None = None) -> dict:
    """Receive one complete frame; ``timeout`` bounds the whole read.

    ``timeout=None`` blocks forever (the worker loop's idle state);
    a finite timeout is the router's per-request deadline.
    """
    sock.settimeout(timeout)
    length, crc = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header claims {length} bytes "
            f"(bound {MAX_FRAME_BYTES}) — corrupt stream"
        )
    data = _recv_exact(sock, length)
    if zlib.crc32(data) != crc:
        raise ProtocolError("frame CRC mismatch — corrupt stream")
    try:
        payload = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be an object, got {type(payload).__name__}"
        )
    return payload
