"""Consistent hashing of edge ids onto shard names.

The router owns one :class:`HashRing` mapping every ``src->dst`` edge to
the shard that computes its predictions.  SHA-256 with virtual nodes
gives a placement that is stable across processes and platforms (no
``hash()`` randomization), spreads edges near-uniformly for any shard
count, and — the property that matters for rebalance — moves only
``~1/N`` of the keys when a shard is added or removed instead of
reshuffling everything.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["HashRing", "edge_key"]


def edge_key(src: str, dst: str) -> str:
    """The routing key for one edge (direction matters: A->B and B->A
    are distinct edges with distinct models)."""
    return f"{src}->{dst}"


def _point(value: str) -> int:
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """An immutable consistent-hash ring over shard names."""

    def __init__(self, shards: Sequence[str], replicas: int = 64) -> None:
        shards = list(shards)
        if not shards:
            raise ValueError("a ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError(f"duplicate shard names: {shards}")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._shards = tuple(shards)
        points = sorted(
            (_point(f"{shard}#{i}"), shard)
            for shard in shards
            for i in range(self.replicas)
        )
        self._keys = [p for p, _ in points]
        self._owners = [s for _, s in points]

    @property
    def shards(self) -> tuple[str, ...]:
        return self._shards

    def lookup(self, key: str) -> str:
        """The shard owning ``key`` (clockwise successor on the ring)."""
        idx = bisect.bisect_right(self._keys, _point(key)) % len(self._keys)
        return self._owners[idx]

    def distribution(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each shard owns (diagnostics; every
        shard appears, including ones that own nothing)."""
        out = {shard: 0 for shard in self._shards}
        for key in keys:
            out[self.lookup(key)] += 1
        return out

    def __len__(self) -> int:
        return len(self._shards)
