"""The shard worker: one durable serving process behind a framed pipe.

Each worker owns a full replica of the contention state (an
:class:`~repro.serve.durability.DurableServingState` with its own WAL and
snapshot directory) plus a :class:`~repro.serve.batch.BatchOnlinePredictor`
over the recovered :class:`~repro.serve.ActiveSet`.  The router broadcasts
every mutation to every worker — contention features need *all* transfers
touching an endpoint, so the active population cannot itself be sharded —
and partitions only the *predictions* by edge.  Because the batch
fix-point converges each request on its own schedule, predicting a subset
of a batch here is bit-identical to predicting it inside the full batch
in one process; that is the equality the chaos harness asserts.

The loop is strictly request/response: recv one frame, dispatch by
``op``, send exactly one reply echoing the request ``id``.  The journal-
seq lockstep invariant lives here: exactly one journal record is written
per broadcast mutation and nothing else journals, so the worker's durable
``last_seq`` *is* the router's global mutation sequence — after a crash,
recovery reports the journaled seq and the router replays strictly after
it, never double-applying a mutation that survived the tear.

Worker ops
----------
``ping``        readiness + identity (shard, pid, last_seq, recovery info)
``mutate``      apply a batch of journaled mutations; reply with last_seq
``predict``     batch prediction for this shard's edges
``checkpoint``  snapshot now; reply with the new generation
``fingerprint`` sha256 digest of the state-equivalence fingerprint
``metrics``     the worker registry's snapshot, for cross-shard merge
``drain``       checkpoint, reply, exit 0 (graceful handoff)
``shutdown``    reply, exit 0 (no checkpoint)
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
from pathlib import Path

from repro.obs import Observability
from repro.serve.active_set import view_from_dict
from repro.serve.batch import BatchOnlinePredictor
from repro.serve.durability import (
    DurabilityConfig,
    recover_serving_state,
)
from repro.serve.fallback import FallbackChain
from repro.serve.shard.protocol import (
    ConnectionClosed,
    recv_frame,
    send_frame,
    unwire_float,
)
from repro.sim.gridftp import TransferRequest

__all__ = ["ShardWorker", "fingerprint_digest", "worker_entry"]


def fingerprint_digest(fingerprint: dict) -> str:
    """Collapse a :meth:`DurableServingState.state_fingerprint` dict into
    one comparable sha256 hex digest (canonical JSON: sorted keys, no
    whitespace — both sections are already strict-JSON-safe because they
    are exactly what snapshots serialize)."""
    blob = json.dumps(
        fingerprint, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class ShardWorker:
    """One shard's process body: recover, then serve the framed loop."""

    def __init__(
        self,
        shard: str,
        sock: socket.socket,
        state_dir: str | Path,
        chain: FallbackChain,
        durability: DurabilityConfig | None = None,
        lenient: bool = True,
    ) -> None:
        self.shard = str(shard)
        self.sock = sock
        self.state_dir = Path(state_dir)
        self.chain = chain
        self.durability = durability or DurabilityConfig()
        self.lenient = lenient
        self.state = None
        self.predictor = None
        self._recovery = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Recover the durable state and build the predictor.  Runs before
        the first reply, so answering the handshake ping *is* the
        readiness signal."""
        obs = Observability.create(trace=False)
        self.state, self._recovery = recover_serving_state(
            self.state_dir,
            obs=obs,
            lenient=self.lenient,
            config=self.durability,
        )
        self.predictor = BatchOnlinePredictor(
            self.chain, self.state.active, obs=obs
        )

    def run(self) -> None:
        """The recv/dispatch/send loop; returns on drain/shutdown/EOF."""
        if self.state is None:
            self.start()
        while True:
            try:
                request = recv_frame(self.sock, timeout=None)
            except ConnectionClosed:
                return  # router is gone; nothing left to serve
            reply = {"id": request.get("id"), "op": request.get("op")}
            stop = False
            try:
                stop = self._dispatch(request, reply)
            except Exception as exc:  # reply, don't die: the router decides
                reply["error"] = f"{type(exc).__name__}: {exc}"
            send_frame(self.sock, reply)
            if stop:
                return

    def _dispatch(self, request: dict, reply: dict) -> bool:
        op = request.get("op")
        if op == "ping":
            reply.update(
                shard=self.shard,
                pid=os.getpid(),
                last_seq=self.state.last_seq,
                generation=self.state.generation,
                recovery=self._recovery.as_dict(),
            )
            return False
        if op == "mutate":
            for mutation in request["mutations"]:
                self._apply(mutation)
            reply["last_seq"] = self.state.last_seq
            return False
        if op == "predict":
            result = self.predictor.predict_batch_detailed(
                [_request_from_dict(r) for r in request["requests"]],
                float(request["now"]),
            )
            reply.update(
                rates=[float(r) for r in result.rates],
                tiers=[t.value for t in result.tiers],
                nonconverged=[bool(b) for b in result.nonconverged],
                last_seq=self.state.last_seq,
            )
            return False
        if op == "checkpoint":
            reply["generation"] = self.state.snapshot()
            reply["last_seq"] = self.state.last_seq
            return False
        if op == "fingerprint":
            reply["fingerprint"] = fingerprint_digest(
                self.state.state_fingerprint()
            )
            reply["last_seq"] = self.state.last_seq
            return False
        if op == "metrics":
            reply["registry"] = self.state.registry.snapshot()
            return False
        if op == "drain":
            reply["generation"] = self.state.snapshot()
            reply["last_seq"] = self.state.last_seq
            return True
        if op == "shutdown":
            reply["last_seq"] = self.state.last_seq
            return True
        raise ValueError(f"unknown op {op!r}")

    def _apply(self, mutation: list) -> None:
        """One broadcast mutation -> exactly one journal record."""
        kind = mutation[0]
        if kind == "add":
            self.state.add(int(mutation[1]), view_from_dict(mutation[2]))
        elif kind == "progress":
            self.state.progress(
                int(mutation[1]),
                rate=unwire_float(mutation[2]),
                expected_end=unwire_float(mutation[3]),
            )
        elif kind == "complete":
            self.state.complete(int(mutation[1]))
        elif kind == "drift":
            self.state.record_drift(
                str(mutation[1]), str(mutation[2]), str(mutation[3]),
                float(mutation[4]), float(mutation[5]),
            )
        else:
            raise ValueError(f"unknown mutation kind {kind!r}")

    def close(self) -> None:
        if self.state is not None:
            self.state.close()
        try:
            self.sock.close()
        except OSError:
            pass


def _request_from_dict(d: dict) -> TransferRequest:
    return TransferRequest(
        src=str(d["src"]),
        dst=str(d["dst"]),
        total_bytes=float(d["total_bytes"]),
        n_files=int(d["n_files"]),
        n_dirs=int(d["n_dirs"]),
        concurrency=int(d["concurrency"]),
        parallelism=int(d["parallelism"]),
    )


def worker_entry(
    shard: str,
    sock: socket.socket,
    state_dir: str,
    chain: FallbackChain,
    durability: DurabilityConfig | None,
    lenient: bool,
    close_fds: tuple[int, ...] = (),
) -> None:
    """``multiprocessing.Process`` target (fork start method: the chain
    and config arrive by inheritance, nothing is pickled).

    ``close_fds`` lists the *other* socketpair fds the fork inherited —
    the parent ends of every sibling's pipe plus the parent end of this
    worker's own.  Closing them here is what makes EOF detection work: a
    SIGKILLed sibling's pipe only reads as closed once no process holds a
    stray copy of its ends.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    worker = ShardWorker(
        shard, sock, state_dir, chain,
        durability=durability, lenient=lenient,
    )
    try:
        worker.start()
        worker.run()
    finally:
        worker.close()
