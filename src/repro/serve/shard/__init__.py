"""Fault-tolerant sharded serving tier: process-per-shard workers,
supervised failover, and snapshot-handoff rebalance.

The serving stack so far lived in one process: one
:class:`~repro.serve.ActiveSet`, one
:class:`~repro.serve.batch.BatchOnlinePredictor`, one durable WAL.  This
package turns it into a supervised fleet without changing a single
answer:

- :mod:`repro.serve.shard.ring` — consistent hashing of ``src->dst``
  edge ids onto shard slots (:class:`HashRing`, :func:`edge_key`);
- :mod:`repro.serve.shard.protocol` — length+CRC framed strict-JSON
  request/response over a ``socketpair`` per worker;
- :mod:`repro.serve.shard.worker` — the worker process body: its own
  :class:`~repro.serve.durability.DurableServingState` (WAL + snapshots)
  and batch predictor behind a recv/dispatch/send loop
  (:class:`ShardWorker`, :func:`fingerprint_digest`);
- :mod:`repro.serve.shard.supervisor` — :class:`ShardCluster`, the
  router + supervisor + rebalancer: replication-log broadcast of
  mutations, ring-partitioned pipelined predicts reassembled in
  submission order, per-request timeouts with shared-backoff retries,
  SIGKILL-respawn-replay failover, degraded answers with explicit
  :attr:`~repro.serve.fallback.ModelTier.DEGRADED` provenance, and
  snapshot-handoff rebalance;
- :mod:`repro.serve.shard.chaos` — :func:`run_shard_chaos`, the
  kill-anything proof behind ``repro-tools shard chaos``;
- :mod:`repro.serve.shard.bench` — :func:`run_shard_bench` /
  :func:`run_shard_scaling` behind ``repro-tools serve-bench --shards``.

Design invariants (the chaos harness asserts all three):

1. Contention state is *fully replicated* — every worker applies every
   mutation, because K*/G*/S* features need all transfers touching an
   endpoint — while predictions are *partitioned* by the ring.
2. One journal record per broadcast mutation and nothing else journals,
   so a worker's durable ``last_seq`` is its exact position in the
   router's replication log; restart replay resumes strictly after it
   and can never double-apply.
3. The batch fix-point converges per request, so a shard predicting its
   sub-batch is bit-identical to the single-process reference predicting
   the full batch.

See ``docs/sharding.md`` for the architecture and failure-mode
walkthroughs.
"""

from __future__ import annotations

from repro.serve.shard.bench import (
    ShardBenchResult,
    run_shard_bench,
    run_shard_scaling,
)
from repro.serve.shard.chaos import (
    ShardChaosConfig,
    ShardChaosReport,
    run_shard_chaos,
)
from repro.serve.shard.protocol import (
    ConnectionClosed,
    FrameTimeout,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.serve.shard.ring import HashRing, edge_key
from repro.serve.shard.supervisor import (
    ClusterConfig,
    ShardCluster,
    ShardState,
    shard_names,
)
from repro.serve.shard.worker import ShardWorker, fingerprint_digest

__all__ = [
    "HashRing",
    "edge_key",
    "ProtocolError",
    "ConnectionClosed",
    "FrameTimeout",
    "send_frame",
    "recv_frame",
    "ShardWorker",
    "fingerprint_digest",
    "ShardCluster",
    "ClusterConfig",
    "ShardState",
    "shard_names",
    "ShardChaosConfig",
    "ShardChaosReport",
    "run_shard_chaos",
    "ShardBenchResult",
    "run_shard_bench",
    "run_shard_scaling",
]
