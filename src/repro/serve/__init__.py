"""Online serving: batch submission-time prediction at scale.

The paper motivates its models with "distributed workflow scheduling and
optimization" — a service answering *many* "how fast would this transfer
run right now?" questions against a live population of in-flight
transfers.  This package is that serving layer:

- :class:`ActiveSet` — the in-flight population under incremental
  ``add``/``complete``/``progress`` updates, with per-endpoint prefix-sum
  indexes rebuilt lazily and only for touched endpoints; ``lenient=True``
  absorbs duplicate/unknown/bad-value mutations instead of raising;
- :class:`BatchOnlinePredictor` — the duration fix-point of
  :class:`~repro.core.online.OnlinePredictor`, vectorized across a whole
  batch of requests (the scalar predictor delegates here with a batch of
  one, so the two paths always agree);
- :class:`FallbackChain` / :class:`ModelTier` — the degradation ladder
  (per-edge model → global model → analytical bound → median → default)
  that lets the predictor answer for edges it has no model for, tagging
  each prediction with its provenance tier;
- :class:`PredictorStats` / :class:`ActiveSetStats` — per-call counters
  (including per-tier predictions and fix-point non-convergence), now
  thin views over a :class:`~repro.obs.MetricsRegistry`; pass an
  :class:`~repro.obs.Observability` bundle (``obs=``) to share one
  registry/tracer/drift-monitor across the whole stack;
- :class:`SweepAdvisor` / :class:`FleetScheduler` — the advisory layer on
  the batch stack (:mod:`repro.serve.advise`): a whole (C, P) sweep in one
  batch call, Eq. 1-clipped and tier-tagged, plus a backlog scheduler that
  replans against the live population and never predicts worse than FIFO;
- :mod:`repro.serve.bench` — synthetic workloads and the
  ``repro-tools serve-bench`` harness (latency percentiles and the
  instrumentation-overhead delta included);
- :mod:`repro.serve.chaos` — the fault-injection replay harness behind
  ``repro-tools chaos``, plus the observed-replay pipeline
  (:func:`run_observed_replay`) behind ``repro-tools metrics``, plus the
  crash-injection mode (:func:`run_crash_replay`) behind
  ``repro-tools state verify``;
- :mod:`repro.serve.durability` — the write-ahead journal, checksummed
  generation-numbered snapshots, :func:`recover_serving_state`, and the
  probe-gated hot-reload model artifact store, behind
  ``repro-tools state snapshot|recover|verify``;
- :mod:`repro.serve.shard` — the fault-tolerant sharded serving tier
  (``repro-tools shard chaos``, ``serve-bench --shards N``):
  :class:`ShardCluster` supervises one durable worker process per
  consistent-hash slot — mutations broadcast through a replication log,
  predictions partitioned by edge and reassembled in submission order,
  crashed or hung workers SIGKILL-respawned and replayed to bit-identical
  state, unavailable shards answered degraded with explicit
  :attr:`ModelTier.DEGRADED` provenance, and live rebalance by snapshot
  handoff (see ``docs/sharding.md``);
- :mod:`repro.serve.stream` — the self-healing streaming loop
  (``repro-tools stream run|status|chaos``): :class:`TailIngester`
  follows a growing log with byte-accurate crash-safe resume,
  :class:`RetrainController` turns drift breaches into circuit-broken,
  probe-gated per-edge refits, :class:`StreamSupervisor` joins them
  under one atomic checkpoint, and :func:`run_stream_chaos` proves the
  exactly-once / breaker / never-unseat guarantees under injected
  faults (see ``docs/streaming.md``).
"""

from repro.serve.advise import (
    FleetPlan,
    FleetScheduler,
    ScheduledTransfer,
    SchedulerBenchmark,
    SweepAdvisor,
    SweepCandidate,
    SweepRecommendation,
)
from repro.serve.active_set import (
    ActiveSet,
    ActiveSetStats,
    EndpointState,
    view_from_dict,
    view_to_dict,
)
from repro.serve.batch import BatchOnlinePredictor, BatchPrediction, PredictorStats
from repro.serve.bench import ServeBenchResult, run_serve_bench
from repro.serve.chaos import (
    ChaosConfig,
    ChaosReport,
    CrashReport,
    ObservedReplay,
    make_durable_events,
    run_chaos_replay,
    run_crash_replay,
    run_observed_replay,
    write_corrupt_jsonl,
)
from repro.serve.durability import (
    DurabilityConfig,
    DurableServingState,
    ModelArtifactStore,
    ModelReloader,
    RecoveryReport,
    recover_serving_state,
)
from repro.serve.fallback import FallbackChain, ModelTier
from repro.serve.shard import (
    ClusterConfig,
    HashRing,
    ShardChaosConfig,
    ShardChaosReport,
    ShardCluster,
    ShardState,
    edge_key,
    run_shard_bench,
    run_shard_chaos,
    run_shard_scaling,
)
from repro.serve.stream import (
    BreakerState,
    CircuitBreaker,
    RetrainController,
    RetrainPolicy,
    StreamChaosConfig,
    StreamChaosReport,
    StreamConfig,
    StreamSupervisor,
    TailIngester,
    read_stream_status,
    run_stream_chaos,
)

__all__ = [
    "ActiveSet",
    "ActiveSetStats",
    "EndpointState",
    "view_to_dict",
    "view_from_dict",
    "BatchOnlinePredictor",
    "BatchPrediction",
    "PredictorStats",
    "FallbackChain",
    "ModelTier",
    "SweepAdvisor",
    "SweepCandidate",
    "SweepRecommendation",
    "FleetScheduler",
    "FleetPlan",
    "ScheduledTransfer",
    "SchedulerBenchmark",
    "ChaosConfig",
    "ChaosReport",
    "CrashReport",
    "ObservedReplay",
    "make_durable_events",
    "run_chaos_replay",
    "run_crash_replay",
    "run_observed_replay",
    "write_corrupt_jsonl",
    "ServeBenchResult",
    "run_serve_bench",
    "DurabilityConfig",
    "DurableServingState",
    "RecoveryReport",
    "recover_serving_state",
    "ModelArtifactStore",
    "ModelReloader",
    "ShardCluster",
    "ClusterConfig",
    "ShardState",
    "HashRing",
    "edge_key",
    "ShardChaosConfig",
    "ShardChaosReport",
    "run_shard_chaos",
    "run_shard_bench",
    "run_shard_scaling",
    "BreakerState",
    "CircuitBreaker",
    "RetrainController",
    "RetrainPolicy",
    "StreamChaosConfig",
    "StreamChaosReport",
    "StreamConfig",
    "StreamSupervisor",
    "TailIngester",
    "read_stream_status",
    "run_stream_chaos",
]
