"""Online serving: batch submission-time prediction at scale.

The paper motivates its models with "distributed workflow scheduling and
optimization" — a service answering *many* "how fast would this transfer
run right now?" questions against a live population of in-flight
transfers.  This package is that serving layer:

- :class:`ActiveSet` — the in-flight population under incremental
  ``add``/``complete``/``progress`` updates, with per-endpoint prefix-sum
  indexes rebuilt lazily and only for touched endpoints;
- :class:`BatchOnlinePredictor` — the duration fix-point of
  :class:`~repro.core.online.OnlinePredictor`, vectorized across a whole
  batch of requests (the scalar predictor delegates here with a batch of
  one, so the two paths always agree);
- :class:`PredictorStats` / :class:`ActiveSetStats` — per-call counters and
  timings for benchmarks and observability;
- :mod:`repro.serve.bench` — synthetic workloads and the
  ``repro-tools serve-bench`` harness.
"""

from repro.serve.active_set import ActiveSet, ActiveSetStats, EndpointState
from repro.serve.batch import BatchOnlinePredictor, PredictorStats
from repro.serve.bench import ServeBenchResult, run_serve_bench

__all__ = [
    "ActiveSet",
    "ActiveSetStats",
    "EndpointState",
    "BatchOnlinePredictor",
    "PredictorStats",
    "ServeBenchResult",
    "run_serve_bench",
]
