"""Lustre Monitoring Tool equivalent (§5.5.2).

"Throughout the experiments, we used the Lustre Monitoring Tool (LMT) to
collect, every five seconds, both disk I/O load for each Lustre OST and CPU
load for each Lustre object storage server (OSS)."

:class:`LmtMonitor` attaches a periodic sampler to a running
:class:`~repro.sim.service.TransferService` and records, per instrumented
endpoint, the OSS CPU utilisation and per-OST read/write rates implied by
the endpoint's *total* storage traffic — Globus and non-Globus alike.
That totality is the point: the monitor sees the unknown load the transfer
log cannot.

:func:`join_lmt_features` then averages samples over each transfer's
lifetime to produce the four §5.5.2 features: "CPU load on source OSS, CPU
load on destination OSS, disk read on source OST, and disk write on
destination OST."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.logs.store import LogStore
from repro.sim.service import TransferService
from repro.sim.storage import LustreStorage

__all__ = ["LmtMonitor", "LmtSampleLog", "join_lmt_features", "LMT_FEATURE_NAMES"]

LMT_FEATURE_NAMES: tuple[str, ...] = (
    "LMT_oss_cpu_src",
    "LMT_oss_cpu_dst",
    "LMT_ost_read_src",
    "LMT_ost_write_dst",
)


@dataclass
class LmtSampleLog:
    """Samples for one instrumented endpoint.

    Attributes
    ----------
    endpoint:
        Endpoint name.
    times:
        Sample timestamps, seconds.
    oss_cpu:
        Aggregate OSS CPU utilisation in [0, 1] per sample.
    ost_read / ost_write:
        Per-OST read/write rate, bytes/s per sample.
    """

    endpoint: str
    times: np.ndarray
    oss_cpu: np.ndarray
    ost_read: np.ndarray
    ost_write: np.ndarray

    def window_means(self, t0: float, t1: float) -> tuple[float, float, float]:
        """Mean (oss_cpu, ost_read, ost_write) over samples in [t0, t1].

        Falls back to the nearest sample when the window contains none
        (shorter than the sampling interval).
        """
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        mask = (self.times >= t0) & (self.times <= t1)
        if not mask.any():
            if self.times.size == 0:
                raise ValueError(f"no samples recorded for {self.endpoint}")
            i = int(np.argmin(np.abs(self.times - 0.5 * (t0 + t1))))
            mask = np.zeros_like(self.times, dtype=bool)
            mask[i] = True
        return (
            float(self.oss_cpu[mask].mean()),
            float(self.ost_read[mask].mean()),
            float(self.ost_write[mask].mean()),
        )


class LmtMonitor:
    """Periodic OSS/OST sampler over a set of Lustre-backed endpoints.

    Attach before ``service.run()``::

        monitor = LmtMonitor(service, ["NERSC-DTN", "NERSC-Edison"])
        service.run()
        log = monitor.logs["NERSC-DTN"]
    """

    def __init__(
        self,
        service: TransferService,
        endpoints: list[str],
        interval_s: float = 5.0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be > 0")
        if not endpoints:
            raise ValueError("need at least one endpoint to monitor")
        self.interval_s = interval_s
        self._raw: dict[str, list[tuple[float, float, float, float]]] = {}
        self._storages: dict[str, LustreStorage] = {}
        for name in endpoints:
            ep = service.fabric.endpoint(name)
            if not isinstance(ep.storage, LustreStorage):
                raise ValueError(
                    f"endpoint {name!r} has no Lustre storage to monitor"
                )
            self._storages[name] = ep.storage
            self._raw[name] = []
        service.add_sampler(interval_s, self._sample)

    def _sample(self, t: float, service: TransferService) -> None:
        for name, storage in self._storages.items():
            tp = service.endpoint_throughput(name)
            total = tp["disk_read"] + tp["disk_write"]
            accessors = service.endpoint_storage_accessors(name)
            self._raw[name].append(
                (
                    t,
                    storage.oss_cpu_utilisation(total, accessors),
                    storage.ost_share(tp["disk_read"]),
                    storage.ost_share(tp["disk_write"]),
                )
            )

    @property
    def logs(self) -> dict[str, LmtSampleLog]:
        """Materialised sample logs per endpoint."""
        out = {}
        for name, rows in self._raw.items():
            arr = np.array(rows) if rows else np.empty((0, 4))
            out[name] = LmtSampleLog(
                endpoint=name,
                times=arr[:, 0] if arr.size else np.array([]),
                oss_cpu=arr[:, 1] if arr.size else np.array([]),
                ost_read=arr[:, 2] if arr.size else np.array([]),
                ost_write=arr[:, 3] if arr.size else np.array([]),
            )
        return out


def join_lmt_features(
    store: LogStore,
    logs: dict[str, LmtSampleLog],
) -> dict[str, np.ndarray]:
    """Per-transfer LMT feature columns (§5.5.2's four new features).

    For each transfer, averages the source endpoint's OSS CPU and OST read
    rate and the destination's OSS CPU and OST write rate over the
    transfer's lifetime.  Transfers touching unmonitored endpoints get 0.0
    (no information).
    """
    n = len(store)
    src = store.column("src")
    dst = store.column("dst")
    ts = store.column("ts")
    te = store.column("te")
    out = {name: np.zeros(n) for name in LMT_FEATURE_NAMES}
    for i in range(n):
        s_log = logs.get(str(src[i]))
        if s_log is not None and s_log.times.size:
            cpu, read, _ = s_log.window_means(ts[i], te[i])
            out["LMT_oss_cpu_src"][i] = cpu
            out["LMT_ost_read_src"][i] = read
        d_log = logs.get(str(dst[i]))
        if d_log is not None and d_log.times.size:
            cpu, _, write = d_log.window_means(ts[i], te[i])
            out["LMT_oss_cpu_dst"][i] = cpu
            out["LMT_ost_write_dst"][i] = write
    return out
