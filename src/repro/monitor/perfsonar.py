"""perfSONAR-style network probing (§3.2).

The paper estimates MMmax for production edges by running third-party
iperf3 tests between perfSONAR hosts co-located with Globus endpoints.
Two realities of that infrastructure are modelled:

- **Partial deployment**: only some sites have perfSONAR hosts, and only a
  subset of those allow third-party tests (the paper found hosts for 195 of
  469 site-grouped edges, 81 of which supported third-party tests).
- **Interface mismatch**: a perfSONAR host is a *single* machine with one
  NIC.  A Globus endpoint backed by 4 or 8 DTNs can beat the probe's
  estimate — "the site has a single perfSONAR host with a 10 Gbps network
  interface card (NIC) but either 4 or 8 DTNs, each with a 10 Gbps NIC."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.network import stream_ceiling
from repro.sim.service import Fabric

__all__ = ["PerfSonarDeployment", "PerfSonarProbeResult"]


@dataclass(frozen=True)
class PerfSonarProbeResult:
    """One edge's iperf3 measurement campaign.

    Attributes
    ----------
    src, dst:
        Endpoint names whose sites were probed.
    mm_estimate:
        Max observed memory-to-memory rate between the perfSONAR hosts,
        bytes/s.
    n_measurements:
        Number of individual tests behind the max.
    """

    src: str
    dst: str
    mm_estimate: float
    n_measurements: int


class PerfSonarDeployment:
    """Simulated perfSONAR deployment over a fabric's sites.

    Parameters
    ----------
    fabric:
        The fabric whose sites may host perfSONAR boxes.
    host_probability:
        Probability a site has a perfSONAR host at all.
    third_party_probability:
        Probability a deployed host allows third-party (remote) tests.
    host_nic_bps:
        The probe host's single NIC capacity.
    seed:
        Deployment + measurement noise seed (deployment is a site-level
        draw, so it is consistent across edges).
    """

    def __init__(
        self,
        fabric: Fabric,
        host_probability: float = 0.75,
        third_party_probability: float = 0.42,
        host_nic_bps: float = 10e9 / 8.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= host_probability <= 1.0:
            raise ValueError("host_probability must be in [0, 1]")
        if not 0.0 <= third_party_probability <= 1.0:
            raise ValueError("third_party_probability must be in [0, 1]")
        self.fabric = fabric
        self.host_nic_bps = host_nic_bps
        self._rng = np.random.default_rng(seed)
        self.has_host: dict[str, bool] = {}
        self.allows_third_party: dict[str, bool] = {}
        for site in sorted(fabric.sites):
            has = bool(self._rng.uniform() < host_probability)
            self.has_host[site] = has
            self.allows_third_party[site] = bool(
                has and self._rng.uniform() < third_party_probability
            )

    # -- deployment queries --------------------------------------------------

    def edge_probeable(self, src_ep: str, dst_ep: str) -> bool:
        """Both sites have hosts (the 195-of-469 stage)."""
        s = self.fabric.endpoint(src_ep).site
        d = self.fabric.endpoint(dst_ep).site
        return self.has_host[s] and self.has_host[d]

    def edge_testable(self, src_ep: str, dst_ep: str) -> bool:
        """Both sites have hosts and allow third-party tests (81-of-195)."""
        s = self.fabric.endpoint(src_ep).site
        d = self.fabric.endpoint(dst_ep).site
        return (
            self.edge_probeable(src_ep, dst_ep)
            and self.allows_third_party[s]
            and self.allows_third_party[d]
        )

    # -- measurement -----------------------------------------------------------

    def probe_edge(
        self,
        src_ep: str,
        dst_ep: str,
        n_streams: int = 8,
        n_measurements: int = 20,
    ) -> PerfSonarProbeResult:
        """Run an iperf3 campaign between the two sites' perfSONAR hosts.

        The probe sees the WAN path exactly as DTN traffic does, but its
        NIC is a single ``host_nic_bps`` interface — the source of the
        §3.2 interface-mismatch pathology on multi-DTN endpoints.
        """
        if not self.edge_testable(src_ep, dst_ep):
            raise ValueError(
                f"edge {src_ep}->{dst_ep} does not support third-party tests"
            )
        if n_streams < 1 or n_measurements < 1:
            raise ValueError("n_streams and n_measurements must be >= 1")
        path = self.fabric.path_between(src_ep, dst_ep)
        if path is None:
            # Same site: memory-to-memory through the LAN; the host NIC is
            # the only constraint.
            ideal = self.host_nic_bps
        else:
            per_stream = stream_ceiling(
                path.rtt_s, path.loss_rate, window_bytes=8.0 * 2**20
            )
            ideal = min(self.host_nic_bps, path.capacity, n_streams * per_stream)
        samples = ideal * self._rng.uniform(0.85, 1.0, size=n_measurements)
        return PerfSonarProbeResult(
            src=src_ep,
            dst=dst_ep,
            mm_estimate=float(samples.max()),
            n_measurements=n_measurements,
        )

    def interface_mismatch(self, src_ep: str, dst_ep: str) -> bool:
        """True when the Globus endpoints' aggregate NIC pool exceeds the
        probe host NIC on either side — Globus rates can then legitimately
        beat the perfSONAR MM estimate."""
        src = self.fabric.endpoint(src_ep)
        dst = self.fabric.endpoint(dst_ep)
        return (
            src.nic_capacity > self.host_nic_bps * 1.01
            or dst.nic_capacity > self.host_nic_bps * 1.01
        )
