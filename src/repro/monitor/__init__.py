"""External measurement infrastructure.

Two monitors the paper leans on:

- :mod:`~repro.monitor.perfsonar` — perfSONAR/iperf3-style memory-to-memory
  network probes used to estimate MMmax for production edges (§3.2),
  including the single-host-NIC-vs-DTN-pool mismatch pathology the paper
  found on 2 of its 81 probed edges.
- :mod:`~repro.monitor.lmt` — a Lustre Monitoring Tool equivalent: 5-second
  sampling of OSS CPU load and OST disk I/O at instrumented endpoints, plus
  the transfer/sample join that turns samples into the four §5.5.2 model
  features.
"""

from repro.monitor.perfsonar import PerfSonarDeployment, PerfSonarProbeResult
from repro.monitor.lmt import LmtMonitor, LmtSampleLog, join_lmt_features, LMT_FEATURE_NAMES

__all__ = [
    "PerfSonarDeployment",
    "PerfSonarProbeResult",
    "LmtMonitor",
    "LmtSampleLog",
    "join_lmt_features",
    "LMT_FEATURE_NAMES",
]
