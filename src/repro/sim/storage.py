"""Storage subsystem models.

Two levels of fidelity:

- :class:`StorageSystem` — an aggregate disk array with separate read/write
  bandwidth, a per-file-open overhead (seek + metadata) that penalises
  small-file workloads (Figure 5), and a concurrency-thrashing curve that
  makes aggregate bandwidth *decline* once too many concurrent accessors
  interleave I/O (one of the two mechanisms behind Figure 4's rise-then-fall).
- :class:`LustreStorage` — an OSS/OST decomposition used by the §5.5.2 LMT
  study: N object storage servers (CPU-bound) front M object storage targets
  (disk-bound); the LMT monitor samples per-OSS CPU load and per-OST disk
  I/O every five seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StorageSystem", "LustreStorage"]


@dataclass
class StorageSystem:
    """Aggregate storage array attached to an endpoint.

    Attributes
    ----------
    name:
        Unique name, e.g. ``"nersc:store"``.
    read_bps / write_bps:
        Peak sequential aggregate bandwidth, bytes/s.
    file_overhead_s:
        Per-file open/seek/metadata cost, seconds.  The achievable per-file
        stream rate for average file size ``s`` is
        ``s / (file_overhead_s + s / stream_bps)`` — small files never
        amortise the overhead (Figure 5).
    stream_bps:
        Sequential bandwidth of a single file stream (one spindle/stripe).
    optimal_concurrency:
        Number of concurrent file streams the array handles at full
        efficiency (~ spindle/OST count).
    thrash_coefficient:
        Fractional efficiency loss per extra accessor beyond
        ``optimal_concurrency``; aggregate capacity is scaled by
        ``1 / (1 + thrash_coefficient * max(0, n - optimal))``.
    """

    name: str
    read_bps: float
    write_bps: float
    file_overhead_s: float = 0.02
    stream_bps: float = 500e6
    optimal_concurrency: int = 16
    thrash_coefficient: float = 0.02

    def __post_init__(self) -> None:
        if self.read_bps <= 0 or self.write_bps <= 0:
            raise ValueError(f"{self.name}: bandwidths must be > 0")
        if self.file_overhead_s < 0:
            raise ValueError(f"{self.name}: file_overhead_s must be >= 0")
        if self.stream_bps <= 0:
            raise ValueError(f"{self.name}: stream_bps must be > 0")
        if self.optimal_concurrency < 1:
            raise ValueError(f"{self.name}: optimal_concurrency must be >= 1")
        if self.thrash_coefficient < 0:
            raise ValueError(f"{self.name}: thrash_coefficient must be >= 0")

    # -- per-flow ceilings -------------------------------------------------

    def per_file_stream_rate(self, avg_file_bytes: float) -> float:
        """Sustainable rate of ONE file stream moving files of average size
        ``avg_file_bytes`` — the small-file penalty curve."""
        if avg_file_bytes <= 0:
            raise ValueError("avg_file_bytes must be > 0")
        per_file_time = self.file_overhead_s + avg_file_bytes / self.stream_bps
        return avg_file_bytes / per_file_time

    def transfer_rate_cap(self, avg_file_bytes: float, concurrency: int) -> float:
        """Storage-side ceiling for a transfer running ``concurrency``
        simultaneous file streams (GridFTP's min(C, Nf))."""
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        return self.per_file_stream_rate(avg_file_bytes) * concurrency

    # -- aggregate capacity under contention --------------------------------

    def thrash_factor(self, n_accessors: int) -> float:
        """Efficiency in (0, 1] as a function of concurrent accessors."""
        if n_accessors < 0:
            raise ValueError("n_accessors must be >= 0")
        excess = max(0, n_accessors - self.optimal_concurrency)
        return 1.0 / (1.0 + self.thrash_coefficient * excess)

    def effective_read_capacity(self, n_accessors: int) -> float:
        return self.read_bps * self.thrash_factor(n_accessors)

    def effective_write_capacity(self, n_accessors: int) -> float:
        return self.write_bps * self.thrash_factor(n_accessors)


@dataclass
class LustreStorage(StorageSystem):
    """Lustre-like parallel file system with explicit OSS/OST structure.

    Extends :class:`StorageSystem` with the per-server decomposition the
    §5.5.2 LMT study monitors:

    Attributes
    ----------
    n_oss:
        Number of object storage servers.  OSS CPU limits aggregate
        throughput at ``oss_cpu_bps`` each; the LMT monitor reports each
        OSS's CPU utilisation.
    n_ost:
        Number of object storage targets (disks); file streams stripe
        round-robin across OSTs.
    oss_cpu_bps:
        Bytes/s one OSS can process at 100% CPU.
    """

    n_oss: int = 4
    n_ost: int = 8
    oss_cpu_bps: float = 2.5e9

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_oss < 1 or self.n_ost < 1:
            raise ValueError(f"{self.name}: need >= 1 OSS and OST")
        if self.oss_cpu_bps <= 0:
            raise ValueError(f"{self.name}: oss_cpu_bps must be > 0")

    @property
    def oss_capacity(self) -> float:
        """Aggregate OSS CPU ceiling, bytes/s."""
        return self.n_oss * self.oss_cpu_bps

    def effective_read_capacity(self, n_accessors: int) -> float:
        return min(
            super().effective_read_capacity(n_accessors), self.oss_capacity
        )

    def effective_write_capacity(self, n_accessors: int) -> float:
        return min(
            super().effective_write_capacity(n_accessors), self.oss_capacity
        )

    def oss_cpu_utilisation(self, throughput_bps: float, accessors: int = 0) -> float:
        """Fraction of aggregate OSS CPU consumed.

        Two components: byte processing (throughput over the OSS CPU
        ceiling) and request handling (IOPS — seek-heavy accessors burn OSS
        CPU even at low byte rates, which is exactly what LMT exposes about
        non-streaming competing load in §5.5.2).
        """
        if throughput_bps < 0:
            raise ValueError("throughput must be >= 0")
        if accessors < 0:
            raise ValueError("accessors must be >= 0")
        per_oss_accessor_budget = 100.0
        iops_term = accessors / (self.n_oss * per_oss_accessor_budget)
        return min(1.0, throughput_bps / self.oss_capacity + iops_term)

    def ost_share(self, throughput_bps: float) -> float:
        """Per-OST disk I/O rate assuming even striping (what LMT samples)."""
        if throughput_bps < 0:
            raise ValueError("throughput must be >= 0")
        return throughput_bps / self.n_ost
