"""Discrete-event core: a monotonic event heap with stable ordering.

The fluid-flow simulator recomputes all transfer rates whenever the active
set changes, which invalidates previously predicted completion times.  The
standard technique is *epoch-tagged tentative events*: every rate
recomputation bumps an epoch counter, predicted completions are pushed with
the epoch in force, and stale events (epoch mismatch at pop time) are
skipped.  :class:`EventQueue` provides the heap; epoch bookkeeping lives in
:class:`repro.sim.service.TransferService`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled event.

    Ordering is (time, priority, seq): ties in time break by explicit
    priority, then by insertion order, so the simulation is deterministic.

    Attributes
    ----------
    time:
        Simulation time (seconds).
    priority:
        Lower runs first among simultaneous events.  Convention:
        0 = completions/departures, 5 = arrivals, 9 = monitors — departures
        free resources before new arrivals see them.
    seq:
        Monotone insertion index (set by the queue).
    kind:
        Event type tag, e.g. ``"submit"``, ``"setup_done"``, ``"complete"``.
    payload:
        Arbitrary event data (not part of the ordering).
    """

    time: float
    priority: int
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Min-heap of :class:`Event` with monotonic pop times."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._last_pop_time = -float("inf")

    def push(self, time: float, kind: str, payload: Any = None, priority: int = 5) -> Event:
        """Schedule an event; rejects scheduling in the popped past."""
        if time != time:  # NaN guard
            raise ValueError("event time is NaN")
        if time < self._last_pop_time:
            raise ValueError(
                f"cannot schedule at t={time} before already-processed "
                f"t={self._last_pop_time}"
            )
        ev = Event(time=time, priority=priority, seq=next(self._counter),
                   kind=kind, payload=payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        ev = heapq.heappop(self._heap)
        self._last_pop_time = ev.time
        return ev

    def peek_time(self) -> float | None:
        """Time of the next event, or None if empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
