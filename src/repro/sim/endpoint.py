"""Endpoint (data transfer node) model.

An endpoint is what Globus Connect software runs on: either a *server*
deployment (GCS — one or more tuned DTNs in front of a parallel file
system) or a *personal* one (GCP — a laptop/workstation).  Table 4 of the
paper breaks edges down by these types.

The endpoint contributes three resources to the fluid allocation:

- ``nic``: aggregate NIC capacity (``nic_bps * n_dtn`` — the paper's §3.2
  notes sites with 4 or 8 DTNs each with a 10 Gbps NIC, which is why a
  single-host perfSONAR probe can under-estimate MMmax);
- ``cpu``: data-processing ceiling that *degrades* once the number of
  GridFTP server processes exceeds the core pool (Figure 4's decline);
- disk read/write via the attached :class:`~repro.sim.storage.StorageSystem`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sim.storage import StorageSystem

__all__ = ["EndpointType", "Endpoint"]


class EndpointType(enum.Enum):
    """Globus Connect deployment flavour."""

    GCS = "server"     # Globus Connect Server
    GCP = "personal"   # Globus Connect Personal


@dataclass
class Endpoint:
    """A Globus endpoint: NIC pool + CPU pool + storage system.

    Attributes
    ----------
    name:
        Unique endpoint name, e.g. ``"NERSC-DTN"``.
    site:
        Site name (must exist in the fabric's site table).
    etype:
        GCS or GCP.
    nic_bps:
        Per-DTN NIC capacity, bytes/s.
    n_dtn:
        DTN pool size; aggregate NIC = ``nic_bps * n_dtn``.
    cpu_cores:
        Cores available to GridFTP server processes across the pool.
    core_bps:
        Bytes/s one core can push through the protocol stack (checksumming,
        context switches included).
    oversubscription_penalty:
        Per-process efficiency loss once processes > cores, modelling
        context-switch thrash: capacity is scaled by
        ``1 / (1 + penalty * max(0, procs - cores))``.
    storage:
        Attached storage system.
    tcp_window_bytes:
        Configured TCP buffer for streams terminating here (DTNs tuned
        large; personal endpoints small — a major GCP handicap on long
        paths).
    """

    name: str
    site: str
    etype: EndpointType
    nic_bps: float
    storage: StorageSystem
    n_dtn: int = 1
    cpu_cores: int = 16
    core_bps: float = 1.2e9
    oversubscription_penalty: float = 0.05
    tcp_window_bytes: float = 16.0 * 2**20

    def __post_init__(self) -> None:
        if self.nic_bps <= 0:
            raise ValueError(f"{self.name}: nic_bps must be > 0")
        if self.n_dtn < 1:
            raise ValueError(f"{self.name}: n_dtn must be >= 1")
        if self.cpu_cores < 1:
            raise ValueError(f"{self.name}: cpu_cores must be >= 1")
        if self.core_bps <= 0:
            raise ValueError(f"{self.name}: core_bps must be > 0")
        if self.oversubscription_penalty < 0:
            raise ValueError(f"{self.name}: oversubscription_penalty must be >= 0")
        if self.tcp_window_bytes <= 0:
            raise ValueError(f"{self.name}: tcp_window_bytes must be > 0")

    # -- resource names -----------------------------------------------------

    @property
    def nic_in_resource(self) -> str:
        """Inbound NIC direction (full-duplex: separate from outbound)."""
        return f"{self.name}:nic_in"

    @property
    def nic_out_resource(self) -> str:
        return f"{self.name}:nic_out"

    @property
    def cpu_resource(self) -> str:
        return f"{self.name}:cpu"

    @property
    def read_resource(self) -> str:
        return f"{self.name}:disk_read"

    @property
    def write_resource(self) -> str:
        return f"{self.name}:disk_write"

    # -- capacities ----------------------------------------------------------

    @property
    def nic_capacity(self) -> float:
        """Aggregate NIC capacity across the DTN pool, bytes/s."""
        return self.nic_bps * self.n_dtn

    def cpu_capacity(self, total_processes: int) -> float:
        """Aggregate CPU data-processing ceiling given the instantaneous
        GridFTP process count at this endpoint.

        Rises linearly with usable parallelism up to the core pool, then the
        whole pool's efficiency decays — together with storage thrash this
        produces Figure 4's rise-then-fall of aggregate rate vs. total
        concurrency.
        """
        if total_processes < 0:
            raise ValueError("total_processes must be >= 0")
        base = self.cpu_cores * self.core_bps
        excess = max(0, total_processes - self.cpu_cores)
        return base / (1.0 + self.oversubscription_penalty * excess)
