"""Non-Globus competing load — the paper's "unknowns" (§4.3.2).

Production endpoints serve more than Globus: cron-driven backups, other
transfer tools (scp/rsync/bbcp), local analysis jobs hammering the file
system, and cross traffic on shared links.  None of it appears in Globus
logs, which is the paper's central measurement problem: "we have no
information that we can use to quantify this other competing load."

:class:`OnOffLoad` models such a source as a Markov-modulated on/off flow:
exponential off periods, exponential on periods with a fixed draw of target
rate per burst.  While "on", the load participates in the fluid allocation
exactly like a transfer (consuming disk and/or NIC resources) but is never
logged.  The §5.5.2 LMT monitor, by contrast, *can* see its storage
component — which is precisely what lets the extended model eliminate the
unknown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BackgroundLoad", "OnOffLoad"]


@dataclass
class BackgroundLoad:
    """A constant competing flow pinned to a set of endpoint resources.

    Attributes
    ----------
    name:
        Unique flow id.
    resources:
        Resource names the flow consumes (e.g. an endpoint's disk_write and
        nic for an external upload).
    rate_cap:
        Target rate, bytes/s.
    weight:
        Fairness weight relative to one TCP stream.
    accessors:
        Concurrent-accessor equivalents for storage-thrash accounting: a
        streaming backup is ~4; a compute job doing scattered small I/O can
        act like dozens of seek-heavy accessors and depress the array's
        effective bandwidth far beyond its own byte rate.
    """

    name: str
    resources: tuple[str, ...]
    rate_cap: float
    weight: float = 4.0
    accessors: int = 4

    def __post_init__(self) -> None:
        if self.rate_cap <= 0:
            raise ValueError(f"{self.name}: rate_cap must be > 0")
        if self.weight <= 0:
            raise ValueError(f"{self.name}: weight must be > 0")
        if self.accessors < 0:
            raise ValueError(f"{self.name}: accessors must be >= 0")


@dataclass
class OnOffLoad:
    """Markov-modulated on/off background load.

    Attributes
    ----------
    name:
        Unique id (also the allocation flow id while on).
    resources:
        Resources consumed while on.
    mean_on_s / mean_off_s:
        Exponential means of burst and gap durations.
    rate_low / rate_high:
        Per-burst target rate drawn uniformly from this range.
    weight:
        Fairness weight (aggressive tools open many streams).
    start_on:
        Whether the source begins in the on state.
    accessors_low / accessors_high:
        Range of concurrent-accessor equivalents drawn per burst (see
        :class:`BackgroundLoad.accessors`); seek-heavy bursts degrade the
        storage array's effective bandwidth via its thrash curve.
    """

    name: str
    resources: tuple[str, ...]
    mean_on_s: float = 600.0
    mean_off_s: float = 1800.0
    rate_low: float = 50e6
    rate_high: float = 500e6
    weight: float = 8.0
    start_on: bool = False
    accessors_low: int = 4
    accessors_high: int = 4

    def __post_init__(self) -> None:
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError(f"{self.name}: durations must be > 0")
        if not 0 < self.rate_low <= self.rate_high:
            raise ValueError(f"{self.name}: need 0 < rate_low <= rate_high")
        if self.weight <= 0:
            raise ValueError(f"{self.name}: weight must be > 0")
        if not 0 <= self.accessors_low <= self.accessors_high:
            raise ValueError(
                f"{self.name}: need 0 <= accessors_low <= accessors_high"
            )

    def sample_on_duration(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_on_s))

    def sample_off_duration(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_off_s))

    def sample_rate(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.rate_low, self.rate_high))

    def sample_accessors(self, rng: np.random.Generator) -> int:
        if self.accessors_low == self.accessors_high:
            return self.accessors_low
        return int(rng.integers(self.accessors_low, self.accessors_high + 1))
