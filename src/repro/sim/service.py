"""The Globus-like transfer service: fabric + fluid event loop + logging.

:class:`Fabric` is the static description of the world — sites, endpoints,
WAN paths, protocol cost model, fault model.  :class:`TransferService` runs
transfer requests and background load through the fabric:

1. Every change to the active flow set (arrival, setup completion, transfer
   completion, background on/off) triggers a *rate recomputation*: the
   current flows are handed to :func:`repro.sim.allocation.allocate_maxmin`
   with load-dependent resource capacities (CPU oversubscription, storage
   thrash) and per-flow intrinsic ceilings (per-stream TCP, per-file
   storage behaviour, integrity discount).
2. Between events, every data-phase transfer progresses linearly at its
   allocated rate; the earliest predicted completion is scheduled as an
   epoch-tagged tentative event (stale predictions are skipped).
3. On data completion, the fault model may stall the transfer before it is
   finalised and logged.

Transfers traverse: src disk read -> src CPU -> src NIC out -> WAN path ->
dst NIC in -> dst CPU -> dst disk write.  Probe transfers can bypass either
disk side (§3.1's /dev/zero and /dev/null runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.logs.schema import TransferLogRecord
from repro.logs.store import LogStore
from repro.sim.allocation import FlowSpec, Resource, allocate_maxmin
from repro.sim.background import BackgroundLoad, OnOffLoad
from repro.sim.endpoint import Endpoint
from repro.sim.events import EventQueue
from repro.sim.faults import FaultModel
from repro.sim.gridftp import GridFTPConfig, TransferRequest
from repro.sim.network import (
    Site,
    WanPath,
    great_circle_km,
    loss_for_distance,
    rtt_seconds,
)

__all__ = ["Fabric", "TransferService"]

# States of an in-flight transfer.
_SETUP = "setup"
_DATA = "data"
_STALL = "stall"

_EPS_BYTES = 1.0  # residual below which a data phase counts as finished


@dataclass
class Fabric:
    """Static world description for a simulation run.

    Attributes
    ----------
    sites:
        Site table, keyed by name.
    endpoints:
        Endpoint table, keyed by name; every endpoint's ``site`` must be in
        ``sites``.
    paths:
        Optional explicit WAN paths keyed by (src_site, dst_site); missing
        pairs get a default path derived from great-circle RTT.
    gridftp:
        Protocol cost model.
    faults:
        Fault injection model.
    default_wan_capacity:
        Capacity for auto-created paths, bytes/s.
    default_loss_rate:
        Base loss rate for auto-created paths; the actual loss grows with
        path length (see :func:`repro.sim.network.loss_for_distance`).
    """

    sites: dict[str, Site]
    endpoints: dict[str, Endpoint]
    paths: dict[tuple[str, str], WanPath] = field(default_factory=dict)
    gridftp: GridFTPConfig = field(default_factory=GridFTPConfig)
    faults: FaultModel = field(default_factory=FaultModel)
    default_wan_capacity: float = 10e9 / 8.0
    default_loss_rate: float = 1e-7

    def __post_init__(self) -> None:
        for ep in self.endpoints.values():
            if ep.site not in self.sites:
                raise ValueError(f"endpoint {ep.name!r} references unknown site {ep.site!r}")
        for (s, d), p in self.paths.items():
            if s not in self.sites or d not in self.sites:
                raise ValueError(f"path ({s!r}, {d!r}) references unknown site")

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self.endpoints[name]
        except KeyError:
            raise KeyError(f"unknown endpoint {name!r}") from None

    def distance_km(self, src_ep: str, dst_ep: str) -> float:
        """Great-circle distance between two endpoints' sites."""
        a = self.sites[self.endpoint(src_ep).site]
        b = self.sites[self.endpoint(dst_ep).site]
        return great_circle_km(a, b)

    def path_between(self, src_ep: str, dst_ep: str) -> WanPath | None:
        """WAN path for a transfer, or None for same-site transfers."""
        s_site = self.endpoint(src_ep).site
        d_site = self.endpoint(dst_ep).site
        if s_site == d_site:
            return None
        key = (s_site, d_site)
        if key not in self.paths:
            dist = great_circle_km(self.sites[s_site], self.sites[d_site])
            self.paths[key] = WanPath(
                src=s_site,
                dst=d_site,
                capacity=self.default_wan_capacity,
                rtt_s=rtt_seconds(dist),
                loss_rate=loss_for_distance(dist, self.default_loss_rate),
            )
        return self.paths[key]


@dataclass
class _ActiveTransfer:
    """Mutable in-flight transfer state."""

    tid: int
    req: TransferRequest
    state: str
    t_submit: float
    remaining_bytes: float
    rate: float = 0.0
    load_exposure: float = 0.0   # integral of relative external load dt
    data_time: float = 0.0       # time spent in data phase
    faults: int = 0


@dataclass
class _ActiveBackground:
    """Background flow currently participating in allocation."""

    name: str
    resources: tuple[str, ...]
    weight: float
    rate_cap: float
    rate: float = 0.0
    accessors: int = 4  # storage accessor-equivalents for thrash accounting


class TransferService:
    """Event-driven fluid simulator of the Globus transfer service.

    Parameters
    ----------
    fabric:
        The world to simulate.
    seed:
        Seed (or Generator) for fault sampling and background modulation.
    stop_background_after:
        If set, on/off background sources stop toggling past this time, so
        a run can drain long transfers to completion in finite events.

    Examples
    --------
    >>> from repro.sim.testbed import build_esnet_testbed
    >>> from repro.sim import TransferRequest
    >>> svc = TransferService(build_esnet_testbed(), seed=0)
    >>> svc.submit(TransferRequest(src="ANL-DTN", dst="BNL-DTN",
    ...                            total_bytes=50e9, n_files=10))
    0
    >>> log = svc.run()
    >>> len(log)
    1
    """

    def __init__(
        self,
        fabric: Fabric,
        seed: int | np.random.Generator | None = 0,
        stop_background_after: float | None = None,
    ):
        self.fabric = fabric
        self.stop_background_after = stop_background_after
        self.rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self.queue = EventQueue()
        self.now = 0.0
        self._epoch = 0
        self._next_tid = 0
        self._active: dict[int, _ActiveTransfer] = {}
        self._backgrounds: dict[str, _ActiveBackground] = {}
        self._onoff: dict[str, OnOffLoad] = {}
        self._records: list[TransferLogRecord] = []
        self._samplers: list[tuple[float, Callable[[float, "TransferService"], None]]] = []
        self._resource_usage: dict[str, float] = {}
        # Count of queued events that represent real work (anything but
        # "sample").  Samplers stop rescheduling once this hits zero and no
        # transfer is in flight, so run() terminates.
        self._pending_work = 0
        # Instantaneous storage accessor counts, refreshed by _recompute.
        self._readers_count: dict[str, int] = {}
        self._writers_count: dict[str, int] = {}

    def _push(self, time: float, kind: str, payload=None, priority: int = 5) -> None:
        """Schedule an event, counting non-sample events as pending work."""
        if kind != "sample":
            self._pending_work += 1
        self.queue.push(time, kind, payload, priority=priority)

    # -- submission API ------------------------------------------------------

    def submit(self, req: TransferRequest) -> int:
        """Queue a transfer request; returns its transfer id."""
        self.fabric.endpoint(req.src)
        self.fabric.endpoint(req.dst)
        tid = self._next_tid
        self._next_tid += 1
        self._push(req.submit_time, "submit", (tid, req), priority=5)
        return tid

    def add_background(self, load: BackgroundLoad, start: float = 0.0) -> None:
        """Register an always-on background flow starting at ``start``."""
        if load.name in self._backgrounds or load.name in self._onoff:
            raise ValueError(f"duplicate background {load.name!r}")
        self._check_resources(load.resources)
        self._push(start, "bg_const_on", load, priority=5)
        # Reserve the name now so duplicates are caught at registration.
        self._onoff[load.name] = None  # type: ignore[assignment]

    def add_onoff_load(self, load: OnOffLoad, start: float = 0.0) -> None:
        """Register a Markov-modulated on/off background source."""
        if load.name in self._onoff or load.name in self._backgrounds:
            raise ValueError(f"duplicate background {load.name!r}")
        self._check_resources(load.resources)
        self._onoff[load.name] = load
        delay = 0.0 if load.start_on else load.sample_off_duration(self.rng)
        self._push(start + delay, "bg_on", load.name, priority=5)

    def add_sampler(
        self, interval_s: float, callback: Callable[[float, "TransferService"], None]
    ) -> None:
        """Invoke ``callback(time, service)`` every ``interval_s`` seconds."""
        if interval_s <= 0:
            raise ValueError("interval must be > 0")
        self._samplers.append((interval_s, callback))
        self._push(0.0, "sample", len(self._samplers) - 1, priority=9)

    def _check_resources(self, names: tuple[str, ...]) -> None:
        valid = set()
        for ep in self.fabric.endpoints.values():
            valid.update(
                (ep.nic_in_resource, ep.nic_out_resource, ep.cpu_resource,
                 ep.read_resource, ep.write_resource)
            )
        unknown = [n for n in names if n not in valid]
        if unknown:
            raise ValueError(f"unknown resources {unknown}")

    # -- main loop -------------------------------------------------------------

    def run(self, until: float | None = None) -> LogStore:
        """Process events (optionally up to simulation time ``until``).

        Returns the log of transfers completed so far.  ``run`` may be
        called repeatedly; the clock never goes backwards.
        """
        while self.queue:
            t_next = self.queue.peek_time()
            if until is not None and t_next > until:
                break
            ev = self.queue.pop()
            if ev.kind != "sample":
                self._pending_work -= 1
            self._advance_to(ev.time)
            handler = getattr(self, f"_on_{ev.kind}")
            handler(ev.payload)
        if until is not None and until > self.now:
            self._advance_to(until)
        return self.log()

    def log(self) -> LogStore:
        """Completed transfers so far, time-sorted."""
        return LogStore.from_records(
            sorted(self._records, key=lambda r: (r.ts, r.transfer_id))
        )

    # -- event handlers ----------------------------------------------------------

    def _on_submit(self, payload: tuple[int, TransferRequest]) -> None:
        tid, req = payload
        # Integrity checking re-reads transferred data to verify checksums,
        # inflating the bytes moved per logged payload byte.
        work = float(req.total_bytes)
        if req.integrity:
            work /= self.fabric.gridftp.integrity_discount
        at = _ActiveTransfer(
            tid=tid,
            req=req,
            state=_SETUP,
            t_submit=self.now,
            remaining_bytes=work,
        )
        self._active[tid] = at
        overhead = req.overhead_seconds(self.fabric.gridftp)
        self._push(self.now + overhead, "setup_done", tid, priority=4)
        # Setup holds GridFTP processes (affects CPU capacity for others).
        self._recompute()

    def _on_setup_done(self, tid: int) -> None:
        at = self._active.get(tid)
        if at is None or at.state != _SETUP:
            return
        at.state = _DATA
        self._recompute()

    def _on_complete(self, payload: tuple[int, int]) -> None:
        tid, epoch = payload
        if epoch != self._epoch:
            return  # stale prediction from an older rate allocation
        at = self._active.get(tid)
        if at is None or at.state != _DATA:
            return
        if at.remaining_bytes > _EPS_BYTES:
            # Numerical drift: not actually done; recompute will reschedule.
            self._recompute()
            return
        # Data phase done: sample faults from accumulated load exposure.
        mean_load = at.load_exposure / at.data_time if at.data_time > 0 else 0.0
        n_faults, stall = self.fabric.faults.sample(at.data_time, mean_load, self.rng)
        at.faults = n_faults
        if stall > 0.0:
            at.state = _STALL
            self._push(self.now + stall, "stall_done", tid, priority=3)
            self._recompute()
        else:
            self._finalise(at)

    def _on_stall_done(self, tid: int) -> None:
        at = self._active.get(tid)
        if at is None or at.state != _STALL:
            return
        self._finalise(at)

    def _finalise(self, at: _ActiveTransfer) -> None:
        req = at.req
        src = self.fabric.endpoint(req.src)
        dst = self.fabric.endpoint(req.dst)
        te = self.now
        if te <= at.t_submit:  # zero-length guard (instant tiny transfer)
            te = at.t_submit + 1e-6
        self._records.append(
            TransferLogRecord(
                transfer_id=at.tid,
                src=req.src,
                dst=req.dst,
                src_site=src.site,
                dst_site=dst.site,
                src_type=src.etype.name,
                dst_type=dst.etype.name,
                ts=at.t_submit,
                te=te,
                nb=float(req.total_bytes),
                nf=req.n_files,
                nd=req.n_dirs,
                c=req.concurrency,
                p=req.parallelism,
                nflt=at.faults,
                distance_km=self.fabric.distance_km(req.src, req.dst),
                tag=req.tag,
            )
        )
        del self._active[at.tid]
        self._recompute()

    def _on_bg_const_on(self, load: BackgroundLoad) -> None:
        self._backgrounds[load.name] = _ActiveBackground(
            name=load.name,
            resources=load.resources,
            weight=load.weight,
            rate_cap=load.rate_cap,
            accessors=load.accessors,
        )
        self._onoff.pop(load.name, None)
        self._recompute()

    def _on_bg_on(self, name: str) -> None:
        load = self._onoff[name]
        self._backgrounds[name] = _ActiveBackground(
            name=name,
            resources=load.resources,
            weight=load.weight,
            rate_cap=load.sample_rate(self.rng),
            accessors=load.sample_accessors(self.rng),
        )
        self._push(self.now + load.sample_on_duration(self.rng), "bg_off", name, priority=5)
        self._recompute()

    def _on_bg_off(self, name: str) -> None:
        self._backgrounds.pop(name, None)
        load = self._onoff[name]
        t_next = self.now + load.sample_off_duration(self.rng)
        if self.stop_background_after is None or t_next <= self.stop_background_after:
            self._push(t_next, "bg_on", name, priority=5)
        self._recompute()

    def _on_sample(self, sampler_idx: int) -> None:
        interval, callback = self._samplers[sampler_idx]
        callback(self.now, self)
        # Keep sampling only while there is work left to observe; otherwise
        # a sampler would keep run() alive (and its sample log growing)
        # forever.
        if self._pending_work > 0 or self._active:
            self._push(self.now + interval, "sample", sampler_idx, priority=9)

    # -- fluid state ----------------------------------------------------------------

    def _advance_to(self, t: float) -> None:
        """Progress all data-phase transfers at current rates to time ``t``."""
        dt = t - self.now
        if dt < 0:
            raise RuntimeError(f"time went backwards: {self.now} -> {t}")
        if dt > 0:
            for at in self._active.values():
                if at.state != _DATA:
                    continue
                at.remaining_bytes = max(0.0, at.remaining_bytes - at.rate * dt)
                at.data_time += dt
                at.load_exposure += self._relative_external_load(at) * dt
        self.now = t

    def _relative_external_load(self, at: _ActiveTransfer) -> float:
        """max of relative external load at source and destination (§3.2),
        computed from *actual* instantaneous flow rates (Globus + unknown)."""
        src = self.fabric.endpoint(at.req.src)
        dst = self.fabric.endpoint(at.req.dst)
        k_sout = self._resource_usage.get(src.nic_out_resource, 0.0) - at.rate
        k_din = self._resource_usage.get(dst.nic_in_resource, 0.0) - at.rate
        k_sout = max(0.0, k_sout)
        k_din = max(0.0, k_din)
        denom_s = at.rate + k_sout
        denom_d = at.rate + k_din
        rel_s = k_sout / denom_s if denom_s > 0 else 0.0
        rel_d = k_din / denom_d if denom_d > 0 else 0.0
        return max(rel_s, rel_d)

    def _recompute(self) -> None:
        """Rebuild resources and flows; reallocate; schedule next completion."""
        self._epoch += 1
        flows: list[FlowSpec] = []
        touched: set[str] = set()

        # Per-endpoint instantaneous counts for load-dependent capacities.
        procs: dict[str, int] = {}
        readers: dict[str, int] = {}
        writers: dict[str, int] = {}
        for at in self._active.values():
            req = at.req
            c_eff = req.effective_concurrency
            procs[req.src] = procs.get(req.src, 0) + c_eff
            procs[req.dst] = procs.get(req.dst, 0) + c_eff
            if req.read_disk:
                readers[req.src] = readers.get(req.src, 0) + c_eff
            if req.write_disk:
                writers[req.dst] = writers.get(req.dst, 0) + c_eff
        for bg in self._backgrounds.values():
            for rn in bg.resources:
                if rn.endswith(":disk_read"):
                    ep = rn.rsplit(":", 1)[0]
                    readers[ep] = readers.get(ep, 0) + bg.accessors
                elif rn.endswith(":disk_write"):
                    ep = rn.rsplit(":", 1)[0]
                    writers[ep] = writers.get(ep, 0) + bg.accessors

        for at in self._active.values():
            if at.state != _DATA:
                continue
            spec = self._flow_spec(at)
            flows.append(spec)
            touched.update(spec.resources)
        for bg in self._backgrounds.values():
            flows.append(
                FlowSpec(
                    flow_id=f"bg:{bg.name}",
                    resources=bg.resources,
                    weight=bg.weight,
                    rate_cap=bg.rate_cap,
                )
            )
            touched.update(bg.resources)

        self._readers_count = readers
        self._writers_count = writers
        resources = self._build_resources(touched, procs, readers, writers)
        rates = allocate_maxmin(resources, flows)

        # Record per-resource usage (for monitors) and per-flow rates.
        usage: dict[str, float] = {}
        for f in flows:
            r = rates[f.flow_id]
            for rn in f.resources:
                usage[rn] = usage.get(rn, 0.0) + r
        self._resource_usage = usage

        next_done_t = np.inf
        next_tid = -1
        for at in self._active.values():
            if at.state != _DATA:
                at.rate = 0.0
                continue
            at.rate = rates[f"xfer:{at.tid}"]
            if at.rate > 0:
                t_done = self.now + at.remaining_bytes / at.rate
                if t_done < next_done_t:
                    next_done_t = t_done
                    next_tid = at.tid
        for bg in self._backgrounds.values():
            bg.rate = rates[f"bg:{bg.name}"]

        if next_tid >= 0 and np.isfinite(next_done_t):
            self._push(next_done_t, "complete", (next_tid, self._epoch), priority=2)

    def _flow_spec(self, at: _ActiveTransfer) -> FlowSpec:
        req = at.req
        src = self.fabric.endpoint(req.src)
        dst = self.fabric.endpoint(req.dst)
        path = self.fabric.path_between(req.src, req.dst)

        res = []
        if req.read_disk:
            res.append(src.read_resource)
        res += [src.cpu_resource, src.nic_out_resource]
        if path is not None:
            res.append(path.name)
        res += [dst.nic_in_resource, dst.cpu_resource]
        if req.write_disk:
            res.append(dst.write_resource)

        c_eff = req.effective_concurrency
        streams = req.n_streams
        cap = np.inf
        if path is not None:
            window = min(src.tcp_window_bytes, dst.tcp_window_bytes)
            cap = min(cap, streams * path.per_stream_ceiling(window))
        if req.read_disk:
            cap = min(cap, src.storage.transfer_rate_cap(req.avg_file_bytes, c_eff))
        if req.write_disk:
            cap = min(cap, dst.storage.transfer_rate_cap(req.avg_file_bytes, c_eff))

        return FlowSpec(
            flow_id=f"xfer:{at.tid}",
            resources=tuple(res),
            weight=float(streams),
            rate_cap=float(cap),
        )

    def _build_resources(
        self,
        touched: set[str],
        procs: dict[str, int],
        readers: dict[str, int],
        writers: dict[str, int],
    ) -> list[Resource]:
        out = []
        for ep in self.fabric.endpoints.values():
            names = {
                ep.nic_in_resource: ep.nic_capacity,
                ep.nic_out_resource: ep.nic_capacity,
                ep.cpu_resource: ep.cpu_capacity(procs.get(ep.name, 0)),
                ep.read_resource: ep.storage.effective_read_capacity(
                    readers.get(ep.name, 0)
                ),
                ep.write_resource: ep.storage.effective_write_capacity(
                    writers.get(ep.name, 0)
                ),
            }
            for name, capacity in names.items():
                if name in touched:
                    out.append(Resource(name, capacity))
        for path in self.fabric.paths.values():
            if path.name in touched:
                out.append(Resource(path.name, path.capacity))
        return out

    # -- observability -----------------------------------------------------------------

    @property
    def active_transfer_count(self) -> int:
        return len(self._active)

    def endpoint_throughput(self, endpoint: str) -> dict[str, float]:
        """Instantaneous throughput by direction at an endpoint, bytes/s.

        Keys: ``disk_read``, ``disk_write``, ``nic_in``, ``nic_out``.
        Includes background (non-Globus) flows — this is what a storage
        monitor like LMT actually sees (§5.5.2).
        """
        ep = self.fabric.endpoint(endpoint)
        u = self._resource_usage
        return {
            "disk_read": u.get(ep.read_resource, 0.0),
            "disk_write": u.get(ep.write_resource, 0.0),
            "nic_in": u.get(ep.nic_in_resource, 0.0),
            "nic_out": u.get(ep.nic_out_resource, 0.0),
        }

    def endpoint_storage_accessors(self, endpoint: str) -> int:
        """Instantaneous storage accessor count (file streams + background
        accessor-equivalents) at an endpoint — what drives seek thrash and
        the IOPS component of OSS CPU."""
        self.fabric.endpoint(endpoint)
        return self._readers_count.get(endpoint, 0) + self._writers_count.get(
            endpoint, 0
        )

    def endpoint_process_count(self, endpoint: str) -> int:
        """Instantaneous GridFTP process count at an endpoint (Figure 4's
        'total concurrency')."""
        self.fabric.endpoint(endpoint)
        total = 0
        for at in self._active.values():
            if at.req.src == endpoint or at.req.dst == endpoint:
                total += at.req.effective_concurrency
        return total

    def endpoint_incoming_rate(self, endpoint: str) -> float:
        """Aggregate rate of Globus transfers currently writing into
        ``endpoint`` (Figure 4's y-axis)."""
        self.fabric.endpoint(endpoint)
        return sum(
            at.rate
            for at in self._active.values()
            if at.req.dst == endpoint and at.state == _DATA
        )
