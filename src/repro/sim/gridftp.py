"""GridFTP transfer semantics (§2, §4.1).

A Globus transfer request names a source, a destination, the dataset shape
(bytes, files, directories) and two tunables:

- **Concurrency C** — independent GridFTP process pairs, each moving one
  file at a time.  Effective concurrency is ``min(C, Nf)`` (a transfer with
  fewer files than C can't use all process pairs — the paper's Eq. for G).
- **Parallelism P** — TCP streams per process pair, so a transfer opens
  ``min(C, Nf) * P`` streams in total (the paper's S features).

Overheads reproduced here (all feed Figure 5's startup/coordination story):

- fixed startup cost (control-channel setup, endpoint activation);
- per-file coordination cost, amortised over the C process pairs;
- per-directory cost (lock contention on parallel file systems);
- an integrity-check rate discount (checksums are enabled by default in
  Globus and consume endpoint CPU per byte).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GridFTPConfig", "TransferRequest"]


@dataclass(frozen=True)
class GridFTPConfig:
    """Protocol cost model shared by all transfers on a fabric.

    Attributes
    ----------
    startup_s:
        Fixed control-channel establishment time per transfer.
    per_file_s:
        Coordination cost per file (divided by effective concurrency).
    per_dir_s:
        Metadata/lock cost per directory.
    integrity_discount:
        Goodput multiplier (0, 1] when integrity checking is enabled: the
        checksum verification pass re-reads data, so a transfer must move
        ``total_bytes / integrity_discount`` of work.
    default_concurrency / default_parallelism:
        Globus service defaults (the paper notes C and P "do not vary
        greatly in the log data").
    """

    startup_s: float = 2.5
    per_file_s: float = 0.05
    per_dir_s: float = 0.2
    integrity_discount: float = 0.85
    default_concurrency: int = 2
    default_parallelism: int = 4

    def __post_init__(self) -> None:
        if self.startup_s < 0 or self.per_file_s < 0 or self.per_dir_s < 0:
            raise ValueError("overhead times must be >= 0")
        if not 0.0 < self.integrity_discount <= 1.0:
            raise ValueError("integrity_discount must be in (0, 1]")
        if self.default_concurrency < 1 or self.default_parallelism < 1:
            raise ValueError("defaults must be >= 1")


@dataclass
class TransferRequest:
    """One Globus transfer request.

    Attributes
    ----------
    src, dst:
        Endpoint names.
    total_bytes:
        Dataset size (Nb).
    n_files:
        File count (Nf).
    n_dirs:
        Directory count (Nd).
    concurrency, parallelism:
        GridFTP tunables (C, P).
    integrity:
        Whether integrity checking is enabled (Globus default: True).
    submit_time:
        Simulation time at which the request arrives.
    tag:
        Free-form label (used by experiments to mark probe transfers).
    read_disk / write_disk:
        Probe switches: the ESnet methodology (§3.1) transfers from
        /dev/zero (no disk read) and to /dev/null (no disk write) to isolate
        MM, DR and DW.  Disabling a side removes the corresponding storage
        resource and rate cap from the fluid model.
    """

    src: str
    dst: str
    total_bytes: float
    n_files: int = 1
    n_dirs: int = 1
    concurrency: int = 2
    parallelism: int = 4
    integrity: bool = True
    submit_time: float = 0.0
    tag: str = ""
    read_disk: bool = True
    write_disk: bool = True

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("source and destination endpoints must differ")
        if self.total_bytes <= 0:
            raise ValueError("total_bytes must be > 0")
        if self.n_files < 1:
            raise ValueError("n_files must be >= 1")
        if self.n_dirs < 0:
            raise ValueError("n_dirs must be >= 0")
        if self.concurrency < 1 or self.parallelism < 1:
            raise ValueError("C and P must be >= 1")

    @property
    def effective_concurrency(self) -> int:
        """min(C, Nf): usable GridFTP process pairs."""
        return min(self.concurrency, self.n_files)

    @property
    def n_streams(self) -> int:
        """Total TCP streams: min(C, Nf) * P."""
        return self.effective_concurrency * self.parallelism

    @property
    def avg_file_bytes(self) -> float:
        return self.total_bytes / self.n_files

    def overhead_seconds(self, cfg: GridFTPConfig) -> float:
        """Non-data time: startup + per-file coordination + directory cost."""
        coord = cfg.per_file_s * self.n_files / self.effective_concurrency
        return cfg.startup_s + coord + cfg.per_dir_s * self.n_dirs
