"""Network fabric: sites, distances, RTT, and per-stream TCP ceilings.

§4.2 / Figure 6 of the paper uses great-circle distance between endpoints as
"a lower bound" proxy for round-trip time; §4.1 explains why "large files
over high-latency links can benefit from higher parallelism".  Both effects
come from TCP:

- RTT grows with distance (propagation at ~2/3 c through fibre, plus a
  fixed routing/queueing overhead per path);
- a single TCP stream's sustainable throughput under random loss follows
  the Mathis et al. ceiling ``MSS / RTT * C / sqrt(p)``, and is also capped
  by ``window / RTT``;
- ``n`` parallel streams aggregate ~n of those ceilings until a shared
  resource saturates (handled by :mod:`repro.sim.allocation`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Site",
    "WanPath",
    "great_circle_km",
    "rtt_seconds",
    "mathis_stream_ceiling",
    "stream_ceiling",
]

EARTH_RADIUS_KM = 6371.0
# Signal propagation in fibre ~ 2/3 of c; real paths are not great circles,
# so apply a path-inflation factor (typical ~1.5x for R&E backbones).
FIBRE_SPEED_KM_PER_S = 2e5
PATH_INFLATION = 1.5
BASE_RTT_S = 0.002  # LAN + per-hop queueing floor
MATHIS_CONST = math.sqrt(1.5)


@dataclass(frozen=True)
class Site:
    """A geographic site hosting one or more endpoints.

    Attributes
    ----------
    name:
        Unique site name, e.g. ``"NERSC"``.
    lat, lon:
        Geographic coordinates in degrees.
    continent:
        Coarse label used by Figure 6's intra- vs inter-continental split.
    """

    name: str
    lat: float
    lon: float
    continent: str = "NA"

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat} out of range")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon} out of range")


def great_circle_km(a: Site, b: Site) -> float:
    """Haversine great-circle distance in km (the paper's edge length)."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def loss_for_distance(distance_km: float, base_loss: float = 1e-7) -> float:
    """Random-loss estimate as a function of path length.

    Longer paths cross more devices and peering points; empirically loss
    grows roughly linearly with hop count.  This keeps short R&E paths
    nearly clean (1e-7) while transoceanic paths see ~1e-6, which is what
    makes distance matter even for well-tuned transfers (Figure 6).
    """
    if distance_km < 0:
        raise ValueError("distance must be >= 0")
    return base_loss * (1.0 + distance_km / 800.0)


def rtt_seconds(distance_km: float) -> float:
    """Round-trip time estimate from great-circle distance."""
    if distance_km < 0:
        raise ValueError("distance must be >= 0")
    one_way = distance_km * PATH_INFLATION / FIBRE_SPEED_KM_PER_S
    return BASE_RTT_S + 2.0 * one_way


def mathis_stream_ceiling(rtt_s: float, loss_rate: float, mss_bytes: float = 1460.0) -> float:
    """Mathis et al. single-stream TCP ceiling, bytes/s: ``MSS/RTT * C/sqrt(p)``."""
    if rtt_s <= 0:
        raise ValueError("rtt must be > 0")
    if not 0.0 < loss_rate < 1.0:
        raise ValueError("loss_rate must be in (0, 1)")
    return (mss_bytes / rtt_s) * (MATHIS_CONST / math.sqrt(loss_rate))


def stream_ceiling(
    rtt_s: float,
    loss_rate: float,
    window_bytes: float = 16.0 * 2**20,
    mss_bytes: float = 1460.0,
) -> float:
    """Per-stream throughput ceiling: min(window/RTT, Mathis).

    ``window_bytes`` models the configured TCP buffer (DTNs are tuned large,
    personal endpoints small) — the reason GCP endpoints underperform on
    long paths even without loss.
    """
    if window_bytes <= 0:
        raise ValueError("window must be > 0")
    return min(window_bytes / rtt_s, mathis_stream_ceiling(rtt_s, loss_rate, mss_bytes))


@dataclass
class WanPath:
    """A WAN path between two sites.

    Attributes
    ----------
    src, dst:
        Site names (direction matters for bookkeeping; capacity is per
        direction).
    capacity:
        Bottleneck path capacity in bytes/s (e.g. a 10 Gb/s light path).
    rtt_s:
        Round-trip time; derived from distance via :func:`rtt_seconds` when
        built by the fabric helpers.
    loss_rate:
        Random loss probability feeding the Mathis ceiling.
    """

    src: str
    dst: str
    capacity: float
    rtt_s: float
    loss_rate: float = 1e-6

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("path capacity must be > 0")
        if self.rtt_s <= 0:
            raise ValueError("rtt must be > 0")
        if not 0.0 < self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in (0, 1)")

    @property
    def name(self) -> str:
        return f"wan:{self.src}->{self.dst}"

    def per_stream_ceiling(self, window_bytes: float) -> float:
        """Per-TCP-stream ceiling on this path for a given window size."""
        return stream_ceiling(self.rtt_s, self.loss_rate, window_bytes)
