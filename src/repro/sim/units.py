"""Unit helpers.  Internal convention: bytes, seconds, bytes/second."""

from __future__ import annotations

__all__ = [
    "KB", "MB", "GB", "TB", "PB",
    "gbit_per_s", "mbit_per_s",
    "to_gbit_per_s", "to_mbyte_per_s",
    "MINUTE", "HOUR", "DAY",
]

KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12
PB = 1e15

MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0


def gbit_per_s(x: float) -> float:
    """Gigabits/second -> bytes/second."""
    return x * 1e9 / 8.0


def mbit_per_s(x: float) -> float:
    """Megabits/second -> bytes/second."""
    return x * 1e6 / 8.0


def to_gbit_per_s(bytes_per_s: float) -> float:
    """Bytes/second -> gigabits/second (Table 1's unit)."""
    return bytes_per_s * 8.0 / 1e9


def to_mbyte_per_s(bytes_per_s: float) -> float:
    """Bytes/second -> megabytes/second (the unit of Figures 3 and 8)."""
    return bytes_per_s / 1e6
