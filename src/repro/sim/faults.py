"""Load-dependent fault injection (the paper's Nflt).

Globus logs record "the number of faults associated with a transfer".  §5.3
observes that faults correlate with load — "faults occur when load is high,
leading to a correlation between faults and a nonlinear function of load" —
which is why Nflt carries weight in the linear model but becomes redundant
in the nonlinear one (Figure 9 vs Figure 12).

We reproduce exactly that coupling: fault arrivals form a Poisson process
whose intensity scales with the transfer's *time-averaged relative external
load* (tracked by the fluid simulator), plus a small baseline.  Each fault
stalls the transfer for a retry penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FaultModel"]


@dataclass(frozen=True)
class FaultModel:
    """Poisson fault process with load-coupled intensity.

    Attributes
    ----------
    base_rate_per_hour:
        Fault intensity for an unloaded transfer.
    load_rate_per_hour:
        Extra intensity at relative external load 1.0; intensity grows with
        the *square* of load so that faults are a nonlinear function of load
        (the mechanism §5.3 hypothesises).
    stall_seconds:
        Mean stall per fault (exponentially distributed).
    """

    base_rate_per_hour: float = 0.02
    load_rate_per_hour: float = 2.0
    stall_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.base_rate_per_hour < 0 or self.load_rate_per_hour < 0:
            raise ValueError("fault rates must be >= 0")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")

    def intensity_per_hour(self, mean_relative_load: float) -> float:
        """Instantaneous fault intensity at a given mean relative load."""
        if mean_relative_load < 0:
            mean_relative_load = 0.0
        load = min(mean_relative_load, 1.0)
        return self.base_rate_per_hour + self.load_rate_per_hour * load * load

    def sample(
        self,
        duration_s: float,
        mean_relative_load: float,
        rng: np.random.Generator,
    ) -> tuple[int, float]:
        """Draw (fault count, total stall seconds) for a finished data phase."""
        if duration_s < 0:
            raise ValueError("duration must be >= 0")
        lam = self.intensity_per_hour(mean_relative_load) * duration_s / 3600.0
        n = int(rng.poisson(lam))
        if n == 0:
            return 0, 0.0
        stall = float(rng.exponential(self.stall_seconds, size=n).sum())
        return n, stall
