"""Wide-area transfer fabric simulator.

The paper's models are trained on proprietary Globus transfer logs.  This
package replaces those logs with a *fluid-flow, event-driven* simulator of a
wide-area data transfer fabric:

- :mod:`~repro.sim.events` — the discrete-event core (heap + epoch-tagged
  tentative completions).
- :mod:`~repro.sim.allocation` — weighted max-min fair rate allocation via
  progressive filling; the mathematical heart of the fluid model.
- :mod:`~repro.sim.network` — sites, great-circle distance, RTT, and a
  Mathis-style per-TCP-stream throughput ceiling.
- :mod:`~repro.sim.storage` — storage systems, including a Lustre-like
  OSS/OST model with per-file seek penalty and concurrency thrashing.
- :mod:`~repro.sim.endpoint` — data transfer nodes: NIC pools, CPU cores,
  GridFTP process cost, endpoint types (GCS server vs GCP personal).
- :mod:`~repro.sim.gridftp` — GridFTP transfer semantics: concurrency C,
  parallelism P, min(C, Nf) effective instances, startup and per-file
  coordination overheads, integrity-check discount.
- :mod:`~repro.sim.faults` — load-dependent fault injection (drives Nflt).
- :mod:`~repro.sim.background` — non-Globus competing load (the paper's
  "unknowns").
- :mod:`~repro.sim.service` — the Globus-like transfer service orchestrator
  that runs requests through the fabric and emits log records.
- :mod:`~repro.sim.testbed` — the ESnet-like 4-site testbed (Table 1).
- :mod:`~repro.sim.fleet` — the ~40-endpoint production fleet with the 30
  heavily used edges (§5).

Rates are bytes/second and times are seconds throughout; use
:mod:`repro.sim.units` to convert.
"""

from repro.sim.events import EventQueue, Event
from repro.sim.allocation import Resource, FlowSpec, allocate_maxmin
from repro.sim.network import Site, WanPath, great_circle_km, rtt_seconds, mathis_stream_ceiling
from repro.sim.storage import StorageSystem, LustreStorage
from repro.sim.endpoint import Endpoint, EndpointType
from repro.sim.gridftp import TransferRequest, GridFTPConfig
from repro.sim.faults import FaultModel
from repro.sim.background import BackgroundLoad, OnOffLoad
from repro.sim.service import TransferService, Fabric
from repro.sim.testbed import build_esnet_testbed, measure_subsystem_maxima, ProbeKind
from repro.sim.fleet import (
    build_production_fleet,
    production_background_loads,
    PRODUCTION_EDGES,
)

__all__ = [
    "EventQueue",
    "Event",
    "Resource",
    "FlowSpec",
    "allocate_maxmin",
    "Site",
    "WanPath",
    "great_circle_km",
    "rtt_seconds",
    "mathis_stream_ceiling",
    "StorageSystem",
    "LustreStorage",
    "Endpoint",
    "EndpointType",
    "TransferRequest",
    "GridFTPConfig",
    "FaultModel",
    "BackgroundLoad",
    "OnOffLoad",
    "TransferService",
    "Fabric",
    "build_esnet_testbed",
    "measure_subsystem_maxima",
    "ProbeKind",
    "build_production_fleet",
    "production_background_loads",
    "PRODUCTION_EDGES",
]
