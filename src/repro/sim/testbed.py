"""ESnet-like 4-site testbed and the Table 1 measurement methodology.

§3.1: "The ESnet testbed comprises identical hardware deployed at three DOE
labs in the United States (Argonne: ANL; Brookhaven: BNL; and Lawrence
Berkeley: LBL) and at CERN in Geneva, Switzerland.  Each system features a
powerful Linux server configured as a data transfer node (DTN), with an
appropriately configured high-speed storage system and 10 Gb/s network
link."

Measurement procedure reproduced here:

- ``DW``: /dev/zero -> disk (local probe, no network);
- ``DR``: disk -> /dev/null (local probe);
- ``MM``: /dev/zero at source -> /dev/null at destination through the WAN
  (many parallel streams, the iperf3-like mode);
- ``R``: disk -> disk end to end.

"We performed at least five repetitions of each experiment and selected
the maximum observed values" — probes apply a small multiplicative
efficiency jitter and the maximum over repetitions is reported.

Calibration targets the *structure* of Table 1, not its third decimal:
disk write is the binding subsystem on every edge, CERN rows have lower DR,
transatlantic MM sits below intra-US MM, and disk-to-disk R on CERN edges
falls below DW because the per-stream TCP ceiling bites at ~110 ms RTT.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.sim.endpoint import Endpoint, EndpointType
from repro.sim.gridftp import GridFTPConfig, TransferRequest
from repro.sim.network import Site, WanPath, great_circle_km, rtt_seconds
from repro.sim.service import Fabric, TransferService
from repro.sim.storage import StorageSystem
from repro.sim.units import GB, gbit_per_s

__all__ = [
    "TESTBED_SITES",
    "build_esnet_testbed",
    "ProbeKind",
    "SubsystemMaxima",
    "measure_subsystem_maxima",
    "local_disk_probe",
    "run_probe_transfer",
]

TESTBED_SITES = {
    "ANL": Site("ANL", 41.71, -87.98, "NA"),
    "BNL": Site("BNL", 40.87, -72.87, "NA"),
    "LBL": Site("LBL", 37.88, -122.25, "NA"),
    "CERN": Site("CERN", 46.23, 6.05, "EU"),
}

# Per-site storage calibration (Gb/s) chosen so the subsystem ordering of
# Table 1 is reproduced: identical fast reads in the US, slightly slower
# reads at CERN, and writes as the binding subsystem everywhere.
_STORAGE_GBPS = {
    #        read   write
    "ANL": (9.302, 7.619),
    "BNL": (9.302, 7.843),
    "LBL": (9.302, 7.767),
    "CERN": (8.696, 7.080),
}

_NIC_GBPS = 9.45          # 10 GbE minus protocol overhead
_WAN_US_GBPS = 9.55       # intra-US R&E path bottleneck
_WAN_TRANSATLANTIC_GBPS = 9.05
_LOSS_RATE = 1e-7         # clean science network

# Probe shapes: disk probes use production-like C/P; MM probes are tuned
# aggressively like an iperf3 -P run.
_DISK_PROBE = dict(concurrency=4, parallelism=4, n_files=8)
_MM_PROBE = dict(concurrency=8, parallelism=8, n_files=8)
_PROBE_BYTES = 100 * GB


def build_esnet_testbed() -> Fabric:
    """Construct the 4-site ESnet-like testbed fabric."""
    endpoints = {}
    for site_name in TESTBED_SITES:
        read_g, write_g = _STORAGE_GBPS[site_name]
        storage = StorageSystem(
            name=f"{site_name}:store",
            read_bps=gbit_per_s(read_g),
            write_bps=gbit_per_s(write_g),
            file_overhead_s=0.005,
            stream_bps=2.5e9,
            optimal_concurrency=16,
            thrash_coefficient=0.02,
        )
        ep_name = f"{site_name}-DTN"
        endpoints[ep_name] = Endpoint(
            name=ep_name,
            site=site_name,
            etype=EndpointType.GCS,
            nic_bps=gbit_per_s(_NIC_GBPS),
            n_dtn=1,
            cpu_cores=16,
            core_bps=1.2e9,
            oversubscription_penalty=0.05,
            storage=storage,
            tcp_window_bytes=8.0 * 2**20,
        )

    paths = {}
    names = list(TESTBED_SITES)
    for s in names:
        for d in names:
            if s == d:
                continue
            transatlantic = (TESTBED_SITES[s].continent != TESTBED_SITES[d].continent)
            cap_g = _WAN_TRANSATLANTIC_GBPS if transatlantic else _WAN_US_GBPS
            dist = great_circle_km(TESTBED_SITES[s], TESTBED_SITES[d])
            paths[(s, d)] = WanPath(
                src=s,
                dst=d,
                capacity=gbit_per_s(cap_g),
                rtt_s=rtt_seconds(dist),
                loss_rate=_LOSS_RATE,
            )

    return Fabric(
        sites=dict(TESTBED_SITES),
        endpoints=endpoints,
        paths=paths,
        gridftp=GridFTPConfig(startup_s=2.0, per_file_s=0.02, per_dir_s=0.1),
    )


class ProbeKind(enum.Enum):
    """The four §3.1 probe modes."""

    DISK_TO_DISK = "R"
    DISK_READ = "DR"
    DISK_WRITE = "DW"
    MEM_TO_MEM = "MM"


@dataclass(frozen=True)
class SubsystemMaxima:
    """One row of Table 1, in bytes/s.

    ``r_max <= min(dr_max, mm_max, dw_max)`` is Eq. 1, validated by
    :meth:`bound_holds`.
    """

    src: str
    dst: str
    r_max: float
    dw_max: float
    dr_max: float
    mm_max: float

    @property
    def eq1_bound(self) -> float:
        return min(self.dr_max, self.mm_max, self.dw_max)

    @property
    def bottleneck(self) -> str:
        """Which subsystem binds: 'disk_read' | 'network' | 'disk_write'."""
        vals = {
            "disk_read": self.dr_max,
            "network": self.mm_max,
            "disk_write": self.dw_max,
        }
        return min(vals, key=vals.get)

    def bound_holds(self, tolerance: float = 1.001) -> bool:
        """Eq. 1 up to a small measurement tolerance."""
        return self.r_max <= self.eq1_bound * tolerance


def local_disk_probe(
    endpoint: Endpoint,
    direction: str,
    rng: np.random.Generator,
    reps: int = 5,
    concurrency: int = 4,
    file_bytes: float = 12.5 * GB,
) -> float:
    """Local /dev/zero->disk or disk->/dev/null probe on one DTN, bytes/s.

    No network is involved; the achievable rate is the storage ceiling for
    the probe's file profile, further limited by endpoint CPU.  Efficiency
    jitter is applied per repetition and the max is returned (the paper's
    methodology).
    """
    if direction not in ("read", "write"):
        raise ValueError(f"direction must be 'read' or 'write', got {direction!r}")
    if reps < 1:
        raise ValueError("reps must be >= 1")
    storage = endpoint.storage
    per_transfer = storage.transfer_rate_cap(file_bytes, concurrency)
    aggregate = (
        storage.effective_read_capacity(concurrency)
        if direction == "read"
        else storage.effective_write_capacity(concurrency)
    )
    ideal = min(per_transfer, aggregate, endpoint.cpu_capacity(concurrency))
    samples = ideal * rng.uniform(0.96, 1.0, size=reps)
    return float(samples.max())


def run_probe_transfer(
    fabric: Fabric,
    src: str,
    dst: str,
    kind: ProbeKind,
    seed: int = 0,
) -> float:
    """Run one probe transfer alone on the fabric; return its average rate."""
    if kind == ProbeKind.DISK_READ or kind == ProbeKind.DISK_WRITE:
        raise ValueError("DR/DW are local probes; use local_disk_probe()")
    shape = _MM_PROBE if kind == ProbeKind.MEM_TO_MEM else _DISK_PROBE
    req = TransferRequest(
        src=src,
        dst=dst,
        total_bytes=_PROBE_BYTES,
        n_dirs=1,
        integrity=False,
        read_disk=(kind == ProbeKind.DISK_TO_DISK),
        write_disk=(kind == ProbeKind.DISK_TO_DISK),
        tag=f"probe:{kind.value}",
        **shape,
    )
    svc = TransferService(fabric, seed=seed)
    svc.submit(req)
    log = svc.run()
    if len(log) != 1:
        raise RuntimeError("probe transfer did not complete")
    return float(log.rates[0])


def measure_subsystem_maxima(
    fabric: Fabric,
    src: str,
    dst: str,
    reps: int = 5,
    seed: int = 0,
) -> SubsystemMaxima:
    """Reproduce one Table 1 row: max over ``reps`` of each probe kind."""
    if reps < 1:
        raise ValueError("reps must be >= 1")
    rng = np.random.default_rng(seed)
    src_ep = fabric.endpoint(src)
    dst_ep = fabric.endpoint(dst)

    dr = local_disk_probe(src_ep, "read", rng, reps=reps)
    dw = local_disk_probe(dst_ep, "write", rng, reps=reps)

    mm_samples = []
    r_samples = []
    for i in range(reps):
        base = run_probe_transfer(fabric, src, dst, ProbeKind.MEM_TO_MEM, seed=seed + i)
        mm_samples.append(base * float(rng.uniform(0.97, 1.0)))
        base = run_probe_transfer(fabric, src, dst, ProbeKind.DISK_TO_DISK, seed=seed + i)
        r_samples.append(base * float(rng.uniform(0.97, 1.0)))

    return SubsystemMaxima(
        src=src,
        dst=dst,
        r_max=max(r_samples),
        dw_max=dw,
        dr_max=dr,
        mm_max=max(mm_samples),
    )
