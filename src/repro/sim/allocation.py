"""Weighted max-min fair rate allocation by progressive filling.

The fluid model treats every active data movement (Globus transfer or
background load) as a *flow* that traverses a set of *resources* (source
disk read, source NIC, source CPU, WAN path, destination NIC, destination
CPU, destination disk write).  At any instant, rates follow weighted max-min
fairness:

- every unfrozen flow ``f`` gets rate ``w_f * lam`` for a global fill level
  ``lam`` that grows until either the flow hits its own cap or one of its
  resources saturates;
- flows on a saturated resource are frozen at their current rate;
- filling continues for the rest until all flows are frozen.

Weights model TCP behaviour: a transfer with more parallel streams grabs a
proportionally larger share of a congested resource, which is exactly why
the paper's ``S{sout,sin,dout,din}`` features matter.

The implementation is the classic progressive-filling algorithm, O(F·R) per
round and at most F+R rounds; fleets here have tens of concurrent flows, so
this is never a bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Resource", "FlowSpec", "allocate_maxmin"]


@dataclass
class Resource:
    """A capacity-constrained resource.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"nersc:disk_read"``.
    capacity:
        Bytes/second the resource can sustain *right now* (callers may make
        this load-dependent before invoking the allocator).
    """

    name: str
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"resource {self.name!r} capacity < 0")


@dataclass
class FlowSpec:
    """One flow competing for resources.

    Attributes
    ----------
    flow_id:
        Caller-chosen identifier; allocation results are keyed by it.
    resources:
        Names of every resource the flow traverses (a flow consumes its full
        rate on each — bandwidth resources, not time-shared slots).
    weight:
        Fairness weight; for a GridFTP transfer this is its TCP stream count
        ``min(C, Nf) * P``.  Must be > 0.
    rate_cap:
        Intrinsic ceiling (bytes/s) from per-stream TCP limits and per-file
        storage behaviour; ``inf`` if uncapped.
    """

    flow_id: str
    resources: tuple[str, ...]
    weight: float = 1.0
    rate_cap: float = float("inf")

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"flow {self.flow_id!r} weight must be > 0")
        if self.rate_cap < 0:
            raise ValueError(f"flow {self.flow_id!r} rate_cap < 0")
        if len(set(self.resources)) != len(self.resources):
            raise ValueError(f"flow {self.flow_id!r} lists a resource twice")


def allocate_maxmin(
    resources: list[Resource],
    flows: list[FlowSpec],
) -> dict[str, float]:
    """Compute weighted max-min fair rates.

    Returns
    -------
    dict mapping ``flow_id`` to allocated rate (bytes/s).

    Raises
    ------
    ValueError
        On duplicate ids or a flow referencing an unknown resource.
    """
    if not flows:
        return {}
    cap = {}
    for r in resources:
        if r.name in cap:
            raise ValueError(f"duplicate resource {r.name!r}")
        cap[r.name] = float(r.capacity)
    seen_ids = set()
    for f in flows:
        if f.flow_id in seen_ids:
            raise ValueError(f"duplicate flow id {f.flow_id!r}")
        seen_ids.add(f.flow_id)
        for rn in f.resources:
            if rn not in cap:
                raise ValueError(f"flow {f.flow_id!r} uses unknown resource {rn!r}")

    rate: dict[str, float] = {f.flow_id: 0.0 for f in flows}
    unfrozen: dict[str, FlowSpec] = {f.flow_id: f for f in flows}
    # Remaining capacity per resource (capacity minus frozen consumption).
    remaining = dict(cap)
    # Which unfrozen flows touch each resource.
    res_flows: dict[str, set[str]] = {name: set() for name in cap}
    for f in flows:
        for rn in f.resources:
            res_flows[rn].add(f.flow_id)

    lam = 0.0
    guard = len(flows) + len(resources) + 2
    for _ in range(guard):
        if not unfrozen:
            break
        # Fill-level increments at which each constraint binds.
        best_delta = np.inf
        bind_resource: str | None = None
        bind_flows: list[str] = []

        # Flow caps: flow f binds at delta = cap_f / w_f - lam.
        for fid, f in unfrozen.items():
            if not np.isfinite(f.rate_cap):
                continue
            d = f.rate_cap / f.weight - lam
            if d < best_delta - 1e-15:
                best_delta = d
                bind_resource = None
                bind_flows = [fid]
            elif abs(d - best_delta) <= 1e-15 and bind_resource is None:
                bind_flows.append(fid)

        # Resource saturation: with frozen consumption removed from
        # `remaining`, unfrozen flows on r currently use lam * wsum, so r
        # binds after a further delta = (remaining_r - lam*wsum) / wsum.
        for rn, fids in res_flows.items():
            active = [fid for fid in fids if fid in unfrozen]
            if not active:
                continue
            wsum = sum(unfrozen[fid].weight for fid in active)
            d = (remaining[rn] - lam * wsum) / wsum
            if d < best_delta - 1e-15:
                best_delta = d
                bind_resource = rn
                bind_flows = active

        if not np.isfinite(best_delta):
            # No caps and no finite resources: unbounded flows — freeze at inf.
            for fid in list(unfrozen):
                rate[fid] = np.inf
                del unfrozen[fid]
            break

        best_delta = max(best_delta, 0.0)
        lam += best_delta

        # Freeze the binding flows at their current fill level.
        for fid in bind_flows:
            f = unfrozen.pop(fid, None)
            if f is None:
                continue
            r_f = min(f.weight * lam, f.rate_cap)
            rate[fid] = r_f
            for rn in f.resources:
                remaining[rn] -= r_f
                # Numerical guard: remaining may dip epsilon-negative.
                if remaining[rn] < 0:
                    remaining[rn] = 0.0
    else:
        raise RuntimeError("progressive filling failed to converge")

    # Freeze anything left (can happen only if loop broke early).
    for fid, f in unfrozen.items():
        rate[fid] = min(f.weight * lam, f.rate_cap)
    return rate
