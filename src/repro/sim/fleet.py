"""Production fleet: the ~40-endpoint fabric behind the §5 experiments.

The paper studies 30 heavily used source-destination pairs drawn from the
Globus logs.  This module builds a fleet whose *population statistics* match
what the paper reports about those edges:

- edge great-circle lengths spanning metro (~2 km) to intercontinental
  (~9000 km), with percentiles near Table 3;
- an edge-type mix near Table 4 (GCS=>GCS 51 %, GCS=>GCP 30 %, GCP=>GCS
  19 %);
- maximum observed aggregate rates spanning ~6 MB/s (personal endpoints on
  slow links) to ~1.2 GB/s (multi-DTN HPC facilities);
- the specific endpoints the paper names: NERSC-DTN, NERSC-Edison, TACC,
  ALCF, SDSC, JLAB, UCAR, Colorado (Figures 4, 5, 8).

Heterogeneity comes from hardware, not magic constants per edge: DTN pool
sizes, NIC speeds, storage bandwidths, TCP window tuning (personal
endpoints are untuned — their tiny windows cripple long-RTT paths), and
per-endpoint non-Globus background load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.background import OnOffLoad
from repro.sim.endpoint import Endpoint, EndpointType
from repro.sim.gridftp import GridFTPConfig
from repro.sim.network import Site
from repro.sim.service import Fabric
from repro.sim.storage import LustreStorage, StorageSystem
from repro.sim.units import gbit_per_s, mbit_per_s

__all__ = [
    "PRODUCTION_SITES",
    "PRODUCTION_EDGES",
    "build_production_fleet",
    "production_background_loads",
]

PRODUCTION_SITES = {
    # North America
    "NERSC": Site("NERSC", 37.87, -122.25, "NA"),
    "ALCF": Site("ALCF", 41.71, -87.98, "NA"),
    "TACC": Site("TACC", 30.39, -97.73, "NA"),
    "SDSC": Site("SDSC", 32.88, -117.24, "NA"),
    "JLAB": Site("JLAB", 37.10, -76.48, "NA"),
    "UCAR": Site("UCAR", 40.03, -105.28, "NA"),
    "Colorado": Site("Colorado", 40.01, -105.27, "NA"),
    "ORNL": Site("ORNL", 35.93, -84.31, "NA"),
    "BNL": Site("BNL", 40.87, -72.87, "NA"),
    "FNAL": Site("FNAL", 41.84, -88.26, "NA"),
    "NCSA": Site("NCSA", 40.11, -88.22, "NA"),
    "Purdue": Site("Purdue", 40.43, -86.91, "NA"),
    "UChicago": Site("UChicago", 41.79, -87.60, "NA"),
    "Stanford": Site("Stanford", 37.43, -122.17, "NA"),
    "Caltech": Site("Caltech", 34.14, -118.13, "NA"),
    "Michigan": Site("Michigan", 42.28, -83.74, "NA"),
    "NYU": Site("NYU", 40.73, -73.99, "NA"),
    "PNNL": Site("PNNL", 46.28, -119.28, "NA"),
    # Europe
    "CERN": Site("CERN", 46.23, 6.05, "EU"),
    "DESY": Site("DESY", 53.57, 9.88, "EU"),
    "EBI": Site("EBI", 52.08, 0.19, "EU"),
    # Asia / Oceania
    "KEK": Site("KEK", 36.15, 140.08, "AS"),
    "NCI": Site("NCI", -35.28, 149.13, "OC"),
}


@dataclass(frozen=True)
class _ServerSpec:
    """Compact GCS endpoint description, expanded by the builder."""

    site: str
    n_dtn: int
    nic_gbps: float
    read_gbs: float   # GB/s aggregate
    write_gbs: float
    cores: int = 16
    lustre: bool = False


# Facility DTN endpoints.  Names follow the paper's usage (<site>-DTN,
# plus NERSC's second endpoint NERSC-Edison).
_SERVERS: dict[str, _ServerSpec] = {
    "NERSC-DTN": _ServerSpec("NERSC", 4, 10.0, 5.0, 4.0, cores=32, lustre=True),
    "NERSC-Edison": _ServerSpec("NERSC", 2, 10.0, 3.0, 2.5, cores=24, lustre=True),
    "ALCF-DTN": _ServerSpec("ALCF", 4, 10.0, 4.5, 4.0, cores=32, lustre=True),
    "TACC-DTN": _ServerSpec("TACC", 2, 10.0, 3.0, 2.2, cores=24, lustre=True),
    "SDSC-DTN": _ServerSpec("SDSC", 2, 10.0, 2.5, 2.0, cores=24, lustre=True),
    "JLAB-DTN": _ServerSpec("JLAB", 1, 10.0, 1.2, 0.9),
    "UCAR-DTN": _ServerSpec("UCAR", 1, 10.0, 1.0, 0.8),
    "Colorado-DTN": _ServerSpec("Colorado", 1, 10.0, 0.9, 0.7),
    "ORNL-DTN": _ServerSpec("ORNL", 4, 10.0, 4.0, 3.5, cores=32, lustre=True),
    "BNL-DTN": _ServerSpec("BNL", 2, 10.0, 2.0, 1.6, cores=24),
    "FNAL-DTN": _ServerSpec("FNAL", 2, 10.0, 2.0, 1.5, cores=24),
    "NCSA-DTN": _ServerSpec("NCSA", 2, 10.0, 2.5, 2.0, cores=24, lustre=True),
    "Purdue-DTN": _ServerSpec("Purdue", 1, 10.0, 1.0, 0.8),
    "UChicago-DTN": _ServerSpec("UChicago", 1, 10.0, 0.8, 0.6),
    "Stanford-DTN": _ServerSpec("Stanford", 1, 10.0, 0.8, 0.6),
    "Caltech-DTN": _ServerSpec("Caltech", 1, 10.0, 1.0, 0.8),
    "Michigan-DTN": _ServerSpec("Michigan", 1, 10.0, 0.8, 0.6),
    "PNNL-DTN": _ServerSpec("PNNL", 1, 10.0, 1.0, 0.8),
    "CERN-DTN": _ServerSpec("CERN", 4, 10.0, 4.0, 3.2, cores=32, lustre=True),
    "DESY-DTN": _ServerSpec("DESY", 2, 10.0, 2.0, 1.6, cores=24),
    "EBI-DTN": _ServerSpec("EBI", 2, 10.0, 1.6, 1.2, cores=24),
    "KEK-DTN": _ServerSpec("KEK", 2, 10.0, 1.6, 1.2, cores=24),
    "NCI-DTN": _ServerSpec("NCI", 2, 10.0, 1.6, 1.2, cores=24),
}


@dataclass(frozen=True)
class _PersonalSpec:
    """Compact GCP endpoint description."""

    site: str
    nic_mbps: float
    disk_mbs: float  # MB/s single disk


# Personal (GCP) endpoints: untuned TCP, single slow disk, modest NICs.
_PERSONALS: dict[str, _PersonalSpec] = {
    "Berkeley-Laptop": _PersonalSpec("NERSC", 900.0, 180.0),
    "Chicago-Laptop": _PersonalSpec("UChicago", 800.0, 150.0),
    "Austin-Workstation": _PersonalSpec("TACC", 950.0, 220.0),
    "Michigan-Workstation": _PersonalSpec("Michigan", 600.0, 140.0),
    "Boulder-Laptop": _PersonalSpec("Colorado", 400.0, 110.0),
    "Caltech-Laptop": _PersonalSpec("Caltech", 500.0, 120.0),
    "NYU-Laptop": _PersonalSpec("NYU", 300.0, 100.0),
}

# The 30 heavily used edges of §5 (16 GCS=>GCS, 9 GCS=>GCP, 5 GCP=>GCS —
# Table 4's 51/30/19 % mix).  Lengths span ~2 km to ~9300 km with
# percentiles close to Table 3 (25th ~247, median ~1436, 90th ~3947 km):
# eight metro/regional edges, a 1000-4000 km bulk, and three
# intercontinental tails.
PRODUCTION_EDGES: list[tuple[str, str]] = [
    # GCS => GCS (16)
    ("JLAB-DTN", "NERSC-DTN"),        # Figure 5's edge (~3900 km)
    ("TACC-DTN", "ALCF-DTN"),         # Figure 8a
    ("TACC-DTN", "NERSC-Edison"),     # Figure 8b
    ("SDSC-DTN", "TACC-DTN"),         # Figure 8c
    ("NERSC-DTN", "JLAB-DTN"),        # Figure 8d
    ("UCAR-DTN", "Colorado-DTN"),     # metro edge (~2 km)
    ("FNAL-DTN", "ALCF-DTN"),         # metro edge
    ("UChicago-DTN", "ALCF-DTN"),     # metro edge
    ("Stanford-DTN", "NERSC-DTN"),    # bay-area edge
    ("NCSA-DTN", "Purdue-DTN"),       # regional edge
    ("ALCF-DTN", "ORNL-DTN"),
    ("ORNL-DTN", "NERSC-DTN"),
    ("BNL-DTN", "NCSA-DTN"),
    ("NERSC-DTN", "ALCF-DTN"),
    ("CERN-DTN", "BNL-DTN"),          # transatlantic
    ("DESY-DTN", "ALCF-DTN"),         # transatlantic
    # GCS => GCP (9): remote users pulling from facilities
    ("SDSC-DTN", "Caltech-Laptop"),   # regional (~180 km)
    ("NCSA-DTN", "Michigan-Workstation"),
    ("ALCF-DTN", "Boulder-Laptop"),
    ("TACC-DTN", "Chicago-Laptop"),
    ("NERSC-DTN", "NYU-Laptop"),
    ("ORNL-DTN", "Boulder-Laptop"),
    ("ALCF-DTN", "NYU-Laptop"),
    ("JLAB-DTN", "Chicago-Laptop"),
    ("CERN-DTN", "Berkeley-Laptop"),  # intercontinental to a laptop
    # GCP => GCS (5): personal uploads
    ("Boulder-Laptop", "UCAR-DTN"),   # metro
    ("Berkeley-Laptop", "NERSC-DTN"), # metro
    ("Michigan-Workstation", "NCSA-DTN"),
    ("Chicago-Laptop", "NERSC-DTN"),
    ("Austin-Workstation", "ORNL-DTN"),
]


def _server_endpoint(name: str, spec: _ServerSpec) -> Endpoint:
    storage_cls = LustreStorage if spec.lustre else StorageSystem
    kwargs = dict(
        name=f"{name}:store",
        read_bps=spec.read_gbs * 1e9,
        write_bps=spec.write_gbs * 1e9,
        file_overhead_s=0.008,
        stream_bps=min(1.2e9, spec.read_gbs * 1e9),
        optimal_concurrency=8 * spec.n_dtn,
        thrash_coefficient=0.03,
    )
    if spec.lustre:
        kwargs.update(
            n_oss=2 * spec.n_dtn,
            n_ost=8 * spec.n_dtn,
            oss_cpu_bps=1.5e9,
        )
    return Endpoint(
        name=name,
        site=spec.site,
        etype=EndpointType.GCS,
        nic_bps=gbit_per_s(spec.nic_gbps * 0.945),  # protocol efficiency
        n_dtn=spec.n_dtn,
        cpu_cores=spec.cores,
        core_bps=1.2e9,
        oversubscription_penalty=0.06,
        storage=storage_cls(**kwargs),
        tcp_window_bytes=8.0 * 2**20,
    )


def _personal_endpoint(name: str, spec: _PersonalSpec) -> Endpoint:
    storage = StorageSystem(
        name=f"{name}:store",
        read_bps=spec.disk_mbs * 1e6,
        write_bps=spec.disk_mbs * 0.8e6,
        file_overhead_s=0.012,
        stream_bps=spec.disk_mbs * 1e6,
        optimal_concurrency=2,
        thrash_coefficient=0.15,
    )
    return Endpoint(
        name=name,
        site=spec.site,
        etype=EndpointType.GCP,
        nic_bps=mbit_per_s(spec.nic_mbps),
        n_dtn=1,
        cpu_cores=4,
        core_bps=0.5e9,
        oversubscription_penalty=0.15,
        storage=storage,
        tcp_window_bytes=1.0 * 2**20,  # untuned stack
    )


def build_production_fleet() -> Fabric:
    """Build the production fabric (sites, endpoints, default WAN paths)."""
    endpoints: dict[str, Endpoint] = {}
    for name, spec in _SERVERS.items():
        endpoints[name] = _server_endpoint(name, spec)
    for name, spec in _PERSONALS.items():
        endpoints[name] = _personal_endpoint(name, spec)
    fabric = Fabric(
        sites=dict(PRODUCTION_SITES),
        endpoints=endpoints,
        gridftp=GridFTPConfig(
            startup_s=2.5,
            per_file_s=0.03,
            per_dir_s=0.15,
            default_concurrency=2,
            default_parallelism=4,
        ),
        default_wan_capacity=gbit_per_s(9.55),
        default_loss_rate=1e-7,
    )
    # Sanity: every heavy edge references real endpoints.
    for s, d in PRODUCTION_EDGES:
        fabric.endpoint(s)
        fabric.endpoint(d)
    return fabric


# Endpoints with substantial non-Globus activity: HPC centres whose file
# systems serve compute jobs, backups, and other transfer tools.  Values
# are (mean_off_s, mean_on_s, rate_low, rate_high) per load source.
_BG_PROFILES: dict[str, list[tuple[str, float, float, float, float]]] = {
    # name suffix, mean_off, mean_on, low, high (bytes/s)
    "NERSC-DTN": [("fsload", 1200.0, 900.0, 200e6, 1.5e9),
                  ("backup", 5400.0, 1800.0, 300e6, 1.0e9)],
    "NERSC-Edison": [("compute-io", 900.0, 1200.0, 300e6, 1.8e9)],
    "ALCF-DTN": [("fsload", 1500.0, 900.0, 200e6, 1.2e9)],
    "TACC-DTN": [("fsload", 1200.0, 1500.0, 300e6, 1.6e9)],
    "SDSC-DTN": [("fsload", 1800.0, 900.0, 150e6, 1.0e9)],
    "ORNL-DTN": [("fsload", 1500.0, 900.0, 200e6, 1.2e9)],
    "CERN-DTN": [("fsload", 1200.0, 1200.0, 300e6, 1.5e9)],
    "NCSA-DTN": [("fsload", 2400.0, 900.0, 100e6, 0.8e9)],
    "BNL-DTN": [("fsload", 2400.0, 900.0, 100e6, 0.8e9)],
    "JLAB-DTN": [("nightly", 4800.0, 1200.0, 100e6, 0.5e9)],
}


def production_background_loads(fabric: Fabric) -> list[OnOffLoad]:
    """Non-Globus load sources for the production fleet (the unknowns).

    Each profile alternates reads and writes on the endpoint's storage plus
    the matching NIC direction, mimicking compute I/O, backups, and other
    transfer tools that Globus cannot see.
    """
    loads: list[OnOffLoad] = []
    for ep_name, profiles in _BG_PROFILES.items():
        ep = fabric.endpoint(ep_name)
        for i, (suffix, off_s, on_s, lo, hi) in enumerate(profiles):
            # Alternate direction per source so both disk sides see load.
            if i % 2 == 0:
                res = (ep.write_resource, ep.nic_in_resource)
            else:
                res = (ep.read_resource, ep.nic_out_resource)
            loads.append(
                OnOffLoad(
                    name=f"{ep_name}:{suffix}",
                    resources=res,
                    mean_on_s=on_s,
                    mean_off_s=off_s,
                    rate_low=lo,
                    rate_high=hi,
                    weight=8.0,
                )
            )
    return loads
