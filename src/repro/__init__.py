"""repro — reproduction of "Explaining Wide Area Data Transfer Performance".

Liu, Balaprakash, Kettimuthu, Foster.  HPDC '17.
DOI 10.1145/3078597.3078605.

Subpackages:

- :mod:`repro.sim` — fluid-flow wide-area transfer fabric simulator (the
  stand-in for the proprietary Globus production logs);
- :mod:`repro.workload` — synthetic transfer request populations;
- :mod:`repro.logs` — transfer-log schema, columnar store, IO, statistics;
- :mod:`repro.core` — the paper's contribution: Eq. 2 contention features,
  the Eq. 1 analytical bound, model pipelines, explanation grids, online
  prediction and advisory tooling;
- :mod:`repro.ml` — from-scratch ML (OLS, gradient boosting, MIC, Weibull,
  persistence);
- :mod:`repro.monitor` — perfSONAR and LMT measurement infrastructure;
- :mod:`repro.harness` — per-table/figure experiment regeneration.

See README.md for a quickstart, DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
