"""From-scratch machine-learning stack used by the transfer-rate models.

The paper's data-driven pipeline (§5) uses linear regression and eXtreme
Gradient Boosting.  Neither scikit-learn nor xgboost are assumed to be
available, so this package implements the required pieces on top of NumPy:

- :class:`~repro.ml.scaler.StandardScaler` — zero-mean / unit-variance
  normalisation (§5, preprocessing).
- :class:`~repro.ml.linear.LinearRegression` — ordinary least squares with a
  coefficient report used for the Figure 9 explanation study.
- :class:`~repro.ml.tree.RegressionTree` — exact-greedy second-order
  regression tree, the weak learner for boosting.
- :class:`~repro.ml.gbt.GradientBoostingRegressor` — XGBoost-style
  second-order gradient boosting with shrinkage, L2 leaf regularisation,
  row/column subsampling and gain-based feature importances (Figure 12).
- :mod:`~repro.ml.metrics` — MdAPE and friends (§5.3).
- :mod:`~repro.ml.correlation` — Pearson correlation coefficient and a
  MINE-style maximal information coefficient (Table 5).
- :mod:`~repro.ml.weibull` — the Weibull throughput-vs-concurrency curve fit
  of Figure 4.
- :mod:`~repro.ml.selection` — train/test splitting and low-variance feature
  elimination (the red crosses of Figures 9 and 12).
"""

from repro.ml.scaler import StandardScaler
from repro.ml.linear import LinearRegression
from repro.ml.tree import RegressionTree
from repro.ml.gbt import GradientBoostingRegressor
from repro.ml.metrics import (
    mdape,
    mape,
    absolute_percentage_errors,
    percentile_absolute_percentage_error,
    rmse,
    r2_score,
)
from repro.ml.correlation import pearson_cc, mic, mic_mine
from repro.ml.weibull import WeibullCurve, fit_weibull_curve
from repro.ml.selection import train_test_split, low_variance_features
from repro.ml.persistence import save_model, load_model

__all__ = [
    "StandardScaler",
    "LinearRegression",
    "RegressionTree",
    "GradientBoostingRegressor",
    "mdape",
    "mape",
    "absolute_percentage_errors",
    "percentile_absolute_percentage_error",
    "rmse",
    "r2_score",
    "pearson_cc",
    "mic",
    "mic_mine",
    "save_model",
    "load_model",
    "WeibullCurve",
    "fit_weibull_curve",
    "train_test_split",
    "low_variance_features",
]
