"""Quantile feature binning for histogram-based tree growing.

XGBoost's scalability comes in part from its *approximate tree learning*
algorithm (Chen & Guestrin 2016, cited as [9] in the paper): candidate split
points are quantile sketch boundaries rather than every distinct value, and
per-node statistics are accumulated into fixed-size histograms.  This module
implements the offline variant: each feature is bucketed once into at most
``max_bins`` quantile bins, and trees operate on the integer bin codes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuantileBinner"]


class QuantileBinner:
    """Maps each feature column to integer quantile-bin codes.

    Parameters
    ----------
    max_bins:
        Upper bound on the number of bins per feature (2..65535).  Features
        with fewer distinct values than ``max_bins`` get one bin per value.

    Notes
    -----
    Bin ``b`` of feature ``f`` contains values ``x`` with
    ``upper_edges_[f][b-1] < x <= upper_edges_[f][b]`` (bin 0 is unbounded
    below).  A tree split "code <= b" therefore corresponds to the raw-value
    split ``x <= upper_edges_[f][b]``.
    """

    def __init__(self, max_bins: int = 256) -> None:
        if not 2 <= max_bins <= 65535:
            raise ValueError(f"max_bins must be in [2, 65535], got {max_bins}")
        self.max_bins = max_bins
        self.upper_edges_: list[np.ndarray] | None = None
        self.n_bins_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "QuantileBinner":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if not np.isfinite(X).all():
            raise ValueError("X contains NaN or inf")
        n_features = X.shape[1]
        edges: list[np.ndarray] = []
        for f in range(n_features):
            col = X[:, f]
            uniq = np.unique(col)
            if uniq.size <= self.max_bins:
                # One bin per distinct value; upper edge == the value itself.
                cuts = uniq
            else:
                qs = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
                cuts = np.unique(np.quantile(col, qs))
                # Final catch-all bin holds everything above the last cut.
                cuts = np.append(cuts, uniq[-1])
            edges.append(cuts)
        self.upper_edges_ = edges
        self.n_bins_ = np.array([e.size for e in edges], dtype=np.int64)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Return uint16 bin codes, shape (n_samples, n_features).

        Values above a feature's top training value clamp into the last bin,
        so unseen test data never produces an out-of-range code.
        """
        if self.upper_edges_ is None:
            raise RuntimeError("QuantileBinner used before fit()")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.upper_edges_):
            raise ValueError(
                f"X shape {X.shape} incompatible with "
                f"{len(self.upper_edges_)} fitted features"
            )
        codes = np.empty(X.shape, dtype=np.uint16)
        # One transpose copy up front: searchsorted on a contiguous column is
        # several times faster than on a strided view of the row-major input.
        cols = np.ascontiguousarray(X.T)
        for f, cuts in enumerate(self.upper_edges_):
            # side='left': x <= cuts[b] -> code b; x > last cut clamps.
            c = np.searchsorted(cuts, cols[f], side="left")
            np.minimum(c, cuts.size - 1, out=c)
            codes[:, f] = c
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def threshold_value(self, feature: int, bin_code: int) -> float:
        """Raw-value threshold equivalent to the split ``code <= bin_code``."""
        if self.upper_edges_ is None:
            raise RuntimeError("QuantileBinner used before fit()")
        return float(self.upper_edges_[feature][bin_code])
