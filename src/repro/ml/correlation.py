"""Dependence measures for the Table 5 linearity study.

The paper compares the Pearson linear correlation coefficient (CC) against
the nonlinear *maximal information coefficient* (MIC, Reshef et al. 2011) for
each feature/rate pair: "Several inputs have a higher nonlinear maximal
information coefficient than the Pearson correlation coefficient, indicating
nonlinear dependencies ... that cannot be captured by a linear model."

MIC here is the standard equipartition approximation of the MINE statistic:
over all grid shapes ``(nx, ny)`` with ``nx * ny <= B(n) = n^alpha``, place
equal-frequency bins on both axes, compute normalised mutual information
``I(X; Y) / log2(min(nx, ny))``, and take the maximum.  The full MINE
characteristic matrix additionally optimises one axis's partition by dynamic
programming; equipartition is a widely used, deterministic approximation
that preserves the property the paper relies on — MIC >> |CC| flags a
nonlinear (or non-monotone) relationship, MIC ~ 0 flags independence.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pearson_cc", "mic", "mic_mine", "mutual_information_binned"]


def pearson_cc(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient; 0.0 when either input is constant.

    Table 5 marks constant-feature entries "–"; callers detect that case via
    :func:`repro.ml.selection.low_variance_features`, so returning 0.0 keeps
    this function total.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least 2 samples")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc @ xc) * (yc @ yc))
    if denom == 0.0:
        return 0.0
    return float((xc @ yc) / denom)


def _equifrequency_codes(v: np.ndarray, n_bins: int) -> np.ndarray:
    """Assign each value to one of ``n_bins`` equal-frequency bins via ranks.

    Rank-based binning handles ties deterministically and guarantees codes in
    ``[0, n_bins)`` even for heavily repeated values.
    """
    order = np.argsort(v, kind="stable")
    ranks = np.empty_like(order)
    ranks[order] = np.arange(v.size)
    return (ranks * n_bins) // v.size


def mutual_information_binned(
    codes_x: np.ndarray, codes_y: np.ndarray, nx: int, ny: int
) -> float:
    """Mutual information (bits) of two integer-coded variables."""
    joint = np.bincount(codes_x * ny + codes_y, minlength=nx * ny).astype(np.float64)
    joint /= joint.sum()
    px = joint.reshape(nx, ny).sum(axis=1)
    py = joint.reshape(nx, ny).sum(axis=0)
    nz = joint > 0
    outer = (px[:, None] * py[None, :]).ravel()
    return float(np.sum(joint[nz] * np.log2(joint[nz] / outer[nz])))


def mic(x: np.ndarray, y: np.ndarray, alpha: float = 0.6, max_side: int = 32) -> float:
    """Equipartition approximation of the maximal information coefficient.

    Parameters
    ----------
    x, y:
        Paired samples.
    alpha:
        Grid budget exponent: grids satisfy ``nx * ny <= n ** alpha``
        (0.6 is the MINE default).
    max_side:
        Hard cap on bins per axis, bounding cost on huge samples.

    Returns
    -------
    float in [0, 1]; ~1 for (noiseless) functional relationships, ~0 for
    independent variables.  Returns 0.0 when either variable is constant.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {y.shape}")
    n = x.size
    if n < 4:
        raise ValueError("need at least 4 samples for MIC")
    if np.unique(x).size < 2 or np.unique(y).size < 2:
        return 0.0

    budget = max(4.0, n**alpha)
    best = 0.0
    nx = 2
    while nx <= max_side and nx * 2 <= budget:
        cx = _equifrequency_codes(x, nx)
        ny_max = min(max_side, int(budget // nx))
        for ny in range(2, ny_max + 1):
            cy = _equifrequency_codes(y, ny)
            mi = mutual_information_binned(cx, cy, nx, ny)
            norm = np.log2(min(nx, ny))
            score = mi / norm
            if score > best:
                best = score
        nx += 1
    return float(min(best, 1.0))


def _entropy_term(masses: np.ndarray, n: int) -> np.ndarray:
    """Elementwise ``p log2 p`` with ``p = masses / n`` (0 at zero mass)."""
    p = masses / n
    out = np.zeros_like(p, dtype=np.float64)
    nz = p > 0
    out[nz] = p[nz] * np.log2(p[nz])
    return out


def _clump_boundaries(x_sorted: np.ndarray, n_target: int) -> np.ndarray:
    """Superclump boundary indices (exclusive ends) for the DP.

    Approximately equal-count cuts, adjusted so runs of identical x values
    are never split (MINE's clumps): a valid column partition must keep
    tied points together.
    """
    n = x_sorted.size
    raw = np.linspace(0, n, n_target + 1).round().astype(np.int64)[1:]
    ends = []
    for e in raw:
        if e <= 0 or e >= n:
            ends.append(int(min(max(e, 0), n)))
            continue
        # Push the cut right until the value changes.
        while e < n and x_sorted[e] == x_sorted[e - 1]:
            e += 1
        ends.append(int(e))
    ends = sorted(set(ends))
    if not ends or ends[-1] != n:
        ends.append(n)
    return np.array(ends, dtype=np.int64)


def _optimize_axis(
    x: np.ndarray, y_codes: np.ndarray, q: int, k: int, clump_factor: int
) -> float:
    """Max ``I(P; Q)`` over x-partitions P with <= k columns, Q fixed.

    Implements MINE's OptimizeXAxis dynamic programme over superclumps:
    ``F(t, l) = max_s F(s, l-1) + g(s, t)`` where ``g`` is the (column
    entropy - joint entropy) contribution of a column spanning superclumps
    ``s+1..t``, which decomposes I = H(Q) + sum_columns g.
    """
    n = x.size
    order = np.argsort(x, kind="stable")
    x_sorted = x[order]
    rows = y_codes[order]

    ends = _clump_boundaries(x_sorted, min(n, clump_factor * k))
    c_hat = ends.size
    if c_hat < 2:
        return 0.0

    # Cumulative per-row counts at each boundary: (q, c_hat+1).
    cum = np.zeros((q, c_hat + 1), dtype=np.int64)
    prev = 0
    for j, e in enumerate(ends):
        seg = rows[prev:e]
        cum[:, j + 1] = cum[:, j] + np.bincount(seg, minlength=q)
        prev = e
    totals = cum.sum(axis=0)  # points up to each boundary

    # g[s, t] for 0 <= s < t <= c_hat: contribution of column (s, t].
    # Computed per t as a vector over s.
    NEG = -np.inf
    F = np.full((c_hat + 1, k + 1), NEG)
    F[0, 0] = 0.0
    for t in range(1, c_hat + 1):
        m = cum[:, t : t + 1] - cum[:, :t]          # (q, t) row masses
        M = totals[t] - totals[:t]                  # (t,) column masses
        g = _entropy_term(m, n).sum(axis=0) - _entropy_term(M, n)
        for l in range(1, min(k, t) + 1):
            cand = F[:t, l - 1] + g
            F[t, l] = cand.max()

    # H(Q) for the fixed equipartition.
    q_masses = cum[:, -1]
    h_q = -_entropy_term(q_masses, n).sum()
    best_f = F[c_hat, 2 : k + 1].max() if k >= 2 else NEG
    if not np.isfinite(best_f):
        return 0.0
    return float(max(0.0, h_q + best_f))


def mic_mine(
    x: np.ndarray,
    y: np.ndarray,
    alpha: float = 0.6,
    clump_factor: int = 3,
    max_side: int = 24,
) -> float:
    """MINE-style MIC with dynamic-programming axis optimisation.

    For each grid shape ``(k, q)`` within the ``n**alpha`` budget, one axis
    is equipartitioned into ``q`` bins and the other axis's partition is
    *optimised* (<= k bins) by the MINE dynamic programme; both
    orientations are tried.  This recovers substantially more mutual
    information than pure equipartition (:func:`mic`) on noisy nonlinear
    data — the regime of the paper's Table 5 — at higher compute cost.

    Parameters mirror :func:`mic`; ``clump_factor`` controls the number of
    DP superclumps per target bin (MINE's ``c``).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {y.shape}")
    n = x.size
    if n < 4:
        raise ValueError("need at least 4 samples for MIC")
    if clump_factor < 1:
        raise ValueError("clump_factor must be >= 1")
    if np.unique(x).size < 2 or np.unique(y).size < 2:
        return 0.0

    budget = max(4.0, n**alpha)
    best = 0.0
    for k in range(2, max_side + 1):
        q_max = min(max_side, int(budget // k))
        if q_max < 2:
            break
        for q in range(2, q_max + 1):
            norm = np.log2(min(k, q))
            # Orientation 1: Q = equipartition of y, optimise x.
            cy = _equifrequency_codes(y, q)
            mi1 = _optimize_axis(x, cy, q, k, clump_factor)
            # Orientation 2: Q = equipartition of x, optimise y.
            cx = _equifrequency_codes(x, q)
            mi2 = _optimize_axis(y, cx, q, k, clump_factor)
            score = max(mi1, mi2) / norm
            if score > best:
                best = score
    return float(min(best, 1.0))
