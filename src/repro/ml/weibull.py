"""Weibull curve fit for throughput-vs-concurrency (Figure 4).

Figure 4 plots aggregate incoming transfer rate against the instantaneous
number of GridFTP server instances at an endpoint and fits a Weibull curve
[37]: throughput first rises with concurrency (more filesystem processes,
CPU cores, TCP streams) and then declines (contention).  The rise-then-fall
shape is that of a scaled Weibull *density*,

    f(c) = A * (k/lam) * (c/lam)^(k-1) * exp(-(c/lam)^k),    k > 1,

which is the parameterisation implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

__all__ = ["WeibullCurve", "fit_weibull_curve"]


@dataclass(frozen=True)
class WeibullCurve:
    """Scaled Weibull-density curve ``f(c) = A (k/lam)(c/lam)^{k-1} e^{-(c/lam)^k}``.

    Attributes
    ----------
    amplitude:
        Scale factor ``A`` (units of rate x concurrency).
    shape:
        Weibull shape ``k``; the rise-then-fall regime needs ``k > 1``.
    scale:
        Weibull scale ``lam`` in concurrency units.
    """

    amplitude: float
    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.amplitude <= 0 or self.shape <= 0 or self.scale <= 0:
            raise ValueError("Weibull parameters must be positive")

    def __call__(self, c: np.ndarray) -> np.ndarray:
        c = np.asarray(c, dtype=np.float64)
        out = np.zeros_like(c, dtype=np.float64)
        pos = c > 0
        z = c[pos] / self.scale
        out[pos] = (
            self.amplitude
            * (self.shape / self.scale)
            * z ** (self.shape - 1.0)
            * np.exp(-(z**self.shape))
        )
        return out

    @property
    def mode(self) -> float:
        """Concurrency at which the fitted curve peaks (0 if k <= 1)."""
        if self.shape <= 1.0:
            return 0.0
        return self.scale * ((self.shape - 1.0) / self.shape) ** (1.0 / self.shape)

    @property
    def peak_rate(self) -> float:
        """Fitted curve value at its mode."""
        m = self.mode
        if m <= 0.0:
            return float(self.amplitude * self.shape / self.scale)
        return float(self(np.array([m]))[0])


def fit_weibull_curve(
    concurrency: np.ndarray,
    rate: np.ndarray,
    shape_bounds: tuple[float, float] = (1.01, 10.0),
) -> WeibullCurve:
    """Least-squares fit of a :class:`WeibullCurve` to (concurrency, rate).

    Initialises from the empirical peak and uses bounded Levenberg–Marquardt
    (trust-region reflective) via :func:`scipy.optimize.curve_fit`.
    """
    c = np.asarray(concurrency, dtype=np.float64).ravel()
    r = np.asarray(rate, dtype=np.float64).ravel()
    if c.shape != r.shape:
        raise ValueError(f"shape mismatch {c.shape} vs {r.shape}")
    if c.size < 4:
        raise ValueError("need at least 4 points to fit 3 parameters")
    if np.any(c < 0) or np.any(r < 0):
        raise ValueError("concurrency and rate must be non-negative")

    def f(x, amp, k, lam):
        out = np.zeros_like(x)
        pos = x > 0
        z = x[pos] / lam
        out[pos] = amp * (k / lam) * z ** (k - 1.0) * np.exp(-(z**k))
        return out

    c_peak = float(c[np.argmax(r)])
    lam0 = max(c_peak, 1.0) * 1.5
    k0 = 2.0
    # For k=2 the density mode value is ~0.86/lam * amp; invert for amp0.
    amp0 = max(float(r.max()), 1e-9) * lam0 / 0.86
    lo = [1e-9, shape_bounds[0], 1e-6]
    hi = [np.inf, shape_bounds[1], max(float(c.max()), 1.0) * 100.0]
    popt, _ = optimize.curve_fit(
        f,
        c,
        r,
        p0=[amp0, k0, lam0],
        bounds=(lo, hi),
        maxfev=20000,
    )
    return WeibullCurve(amplitude=float(popt[0]), shape=float(popt[1]), scale=float(popt[2]))
