"""Error metrics used in the paper's evaluation (§5.3, §5.5).

The headline metric is the *median absolute percentage error* (MdAPE):
``median(|R - Rhat| / R) * 100``.  §5.5.2 additionally reports the 95th
percentile of the absolute percentage error.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "absolute_percentage_errors",
    "mdape",
    "mape",
    "percentile_absolute_percentage_error",
    "rmse",
    "r2_score",
]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty input")
    return y_true, y_pred


def absolute_percentage_errors(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Per-sample ``|y - yhat| / |y| * 100``.

    Raises if any true value is zero — transfer rates are strictly positive,
    so a zero denominator indicates an upstream bug rather than valid data.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    if np.any(y_true == 0.0):
        raise ValueError("y_true contains zeros; percentage error undefined")
    return np.abs(y_true - y_pred) / np.abs(y_true) * 100.0


def mdape(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Median absolute percentage error, in percent (the paper's MdAPE)."""
    return float(np.median(absolute_percentage_errors(y_true, y_pred)))


def mape(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute percentage error, in percent."""
    return float(np.mean(absolute_percentage_errors(y_true, y_pred)))


def percentile_absolute_percentage_error(
    y_true: np.ndarray, y_pred: np.ndarray, q: float = 95.0
) -> float:
    """``q``-th percentile of the absolute percentage error (§5.5.2 uses q=95)."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    return float(np.percentile(absolute_percentage_errors(y_true, y_pred), q))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    A constant target is a degenerate case (``ss_tot == 0``): predicted
    exactly it returns 1.0 (the model explains everything there is to
    explain); predicted with any error it returns 0.0 rather than ``-inf``,
    matching the common convention.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0.0 else 1.0
    return 1.0 - ss_res / ss_tot
