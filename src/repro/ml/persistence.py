"""Model persistence: JSON round-trips for every fitted estimator.

A model trained overnight on a big log should be reusable by the scheduler
in the morning without retraining.  Formats are plain JSON (human-
inspectable, diff-able, no pickle security/versioning hazards): trees as
flat node arrays, the binner as per-feature edge lists.

Top-level entry points :func:`save_model` / :func:`load_model` dispatch on
a ``kind`` tag and cover :class:`~repro.ml.linear.LinearRegression`,
:class:`~repro.ml.gbt.GradientBoostingRegressor` and
:class:`~repro.ml.scaler.StandardScaler`.

Format version 2 adds a ``checksum`` field (SHA-256 over the canonical
JSON of the rest of the document) verified at load time — a corrupted or
hand-edited artifact raises :class:`ModelIntegrityError` instead of
deserialising into a silently wrong model.  Version-1 artifacts (no
checksum) still load, with a :class:`UserWarning` and a module-level
counter (:func:`legacy_load_count`) so operators can see how much
unchecksummed inventory is still in rotation.  :func:`save_model` writes
atomically (write-temp -> fsync -> ``os.replace``): a crash mid-save
leaves the previous artifact intact, never a truncated JSON file.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

from repro.atomicio import atomic_write_text, checksum_payload
from repro.ml.binning import QuantileBinner
from repro.ml.gbt import GradientBoostingRegressor
from repro.ml.linear import LinearRegression
from repro.ml.scaler import StandardScaler
from repro.ml.tree import RegressionTree, TreeGrowthParams

__all__ = [
    "save_model",
    "load_model",
    "model_to_dict",
    "model_from_dict",
    "ModelIntegrityError",
    "legacy_load_count",
]

_FORMAT_VERSION = 2

# Version-1 (pre-checksum) artifacts loaded this process; see
# legacy_load_count().
_legacy_loads = 0


class ModelIntegrityError(ValueError):
    """A persisted model failed its checksum (or carries none where one is
    required) — the artifact is corrupt, not merely outdated."""


def legacy_load_count() -> int:
    """How many version-1 (checksum-less) artifacts this process has
    loaded.  Mirrored into ``durability_legacy_artifacts_total`` by the
    serving artifact store."""
    return _legacy_loads


def _arr(a: np.ndarray | None) -> list | None:
    return None if a is None else np.asarray(a).tolist()


# -- per-class encoders -------------------------------------------------------


def _scaler_to_dict(s: StandardScaler) -> dict:
    if s.mean_ is None:
        raise ValueError("cannot persist an unfitted StandardScaler")
    return {
        "kind": "standard_scaler",
        "ddof": s.ddof,
        "mean": _arr(s.mean_),
        "scale": _arr(s.scale_),
    }


def _scaler_from_dict(d: dict) -> StandardScaler:
    s = StandardScaler(ddof=d["ddof"])
    s.mean_ = np.array(d["mean"], dtype=np.float64)
    s.scale_ = np.array(d["scale"], dtype=np.float64)
    return s


def _linear_to_dict(m: LinearRegression) -> dict:
    if m.coef_ is None:
        raise ValueError("cannot persist an unfitted LinearRegression")
    return {
        "kind": "linear_regression",
        "fit_intercept": m.fit_intercept,
        "coef": _arr(m.coef_),
        "intercept": m.intercept_,
    }


def _linear_from_dict(d: dict) -> LinearRegression:
    m = LinearRegression(fit_intercept=d["fit_intercept"])
    m.coef_ = np.array(d["coef"], dtype=np.float64)
    m.intercept_ = float(d["intercept"])
    return m


def _binner_to_dict(b: QuantileBinner) -> dict:
    if b.upper_edges_ is None:
        raise ValueError("cannot persist an unfitted QuantileBinner")
    return {
        "max_bins": b.max_bins,
        "upper_edges": [e.tolist() for e in b.upper_edges_],
    }


def _binner_from_dict(d: dict) -> QuantileBinner:
    b = QuantileBinner(max_bins=d["max_bins"])
    b.upper_edges_ = [np.array(e, dtype=np.float64) for e in d["upper_edges"]]
    b.n_bins_ = np.array([e.size for e in b.upper_edges_], dtype=np.int64)
    return b


def _tree_to_dict(t: RegressionTree) -> dict:
    if t.node_feature_ is None:
        raise ValueError("cannot persist an unfitted tree")
    return {
        "feature": _arr(t.node_feature_),
        "bin": _arr(t.node_bin_),
        "left": _arr(t.node_left_),
        "right": _arr(t.node_right_),
        "value": _arr(t.node_value_),
        "gain": _arr(t.node_gain_),
        "feature_gain": _arr(t.feature_gain_),
        "feature_count": _arr(t.feature_count_),
    }


def _tree_from_dict(d: dict, params: TreeGrowthParams, max_bins: int) -> RegressionTree:
    t = RegressionTree(params, max_bins)
    t.node_feature_ = np.array(d["feature"], dtype=np.int32)
    t.node_bin_ = np.array(d["bin"], dtype=np.int32)
    t.node_left_ = np.array(d["left"], dtype=np.int32)
    t.node_right_ = np.array(d["right"], dtype=np.int32)
    t.node_value_ = np.array(d["value"], dtype=np.float64)
    t.node_gain_ = np.array(d["gain"], dtype=np.float64)
    t.feature_gain_ = np.array(d["feature_gain"], dtype=np.float64)
    t.feature_count_ = np.array(d["feature_count"], dtype=np.int64)
    return t


def _gbt_to_dict(m: GradientBoostingRegressor) -> dict:
    if m.binner_ is None:
        raise ValueError("cannot persist an unfitted GradientBoostingRegressor")
    return {
        "kind": "gradient_boosting",
        "hyper": {
            "n_estimators": m.n_estimators,
            "learning_rate": m.learning_rate,
            "max_depth": m.tree_params.max_depth,
            "min_child_weight": m.tree_params.min_child_weight,
            "reg_lambda": m.tree_params.reg_lambda,
            "gamma": m.tree_params.gamma,
            "subsample": m.subsample,
            "colsample_bytree": m.colsample_bytree,
            "max_bins": m.max_bins,
            "random_state": m.random_state,
        },
        "base_score": m.base_score_,
        "n_features": m.n_features_,
        "binner": _binner_to_dict(m.binner_),
        "trees": [_tree_to_dict(t) for t in m.trees_],
    }


def _gbt_from_dict(d: dict) -> GradientBoostingRegressor:
    h = d["hyper"]
    m = GradientBoostingRegressor(
        n_estimators=h["n_estimators"],
        learning_rate=h["learning_rate"],
        max_depth=h["max_depth"],
        min_child_weight=h["min_child_weight"],
        reg_lambda=h["reg_lambda"],
        gamma=h["gamma"],
        subsample=h["subsample"],
        colsample_bytree=h["colsample_bytree"],
        max_bins=h["max_bins"],
        random_state=h["random_state"],
    )
    m.base_score_ = float(d["base_score"])
    m.n_features_ = int(d["n_features"])
    m.binner_ = _binner_from_dict(d["binner"])
    m.trees_ = [
        _tree_from_dict(td, m.tree_params, m.max_bins) for td in d["trees"]
    ]
    return m


# -- dispatch ------------------------------------------------------------------

_ENCODERS = {
    StandardScaler: _scaler_to_dict,
    LinearRegression: _linear_to_dict,
    GradientBoostingRegressor: _gbt_to_dict,
}
_DECODERS = {
    "standard_scaler": _scaler_from_dict,
    "linear_regression": _linear_from_dict,
    "gradient_boosting": _gbt_from_dict,
}


def model_to_dict(model) -> dict:
    """Serialise a fitted estimator to a JSON-compatible dict (format
    version 2: includes a SHA-256 ``checksum`` over the rest)."""
    enc = _ENCODERS.get(type(model))
    if enc is None:
        raise TypeError(f"cannot persist {type(model).__name__}")
    out = enc(model)
    out["format_version"] = _FORMAT_VERSION
    out["checksum"] = checksum_payload(out)
    return out


def model_from_dict(d: dict):
    """Inverse of :func:`model_to_dict`.

    Version-2 documents are checksum-verified (raising
    :class:`ModelIntegrityError` on mismatch or a missing checksum);
    version-1 documents predate the checksum and load with a warning.
    """
    global _legacy_loads
    version = d.get("format_version")
    if version == _FORMAT_VERSION:
        stored = d.get("checksum")
        if stored is None:
            raise ModelIntegrityError(
                "format_version 2 artifact is missing its checksum"
            )
        expected = checksum_payload(d)
        if stored != expected:
            raise ModelIntegrityError(
                f"model checksum mismatch: stored {stored[:12]}..., "
                f"computed {expected[:12]}... (corrupt or tampered artifact)"
            )
    elif version == 1:
        _legacy_loads += 1
        warnings.warn(
            "loading a version-1 model artifact without a checksum; "
            "re-save to upgrade it to the checksummed format",
            UserWarning,
            stacklevel=2,
        )
    else:
        raise ValueError(f"unsupported format_version {version!r}")
    dec = _DECODERS.get(d.get("kind"))
    if dec is None:
        raise ValueError(f"unknown model kind {d.get('kind')!r}")
    return dec(d)


def save_model(model, path: str | Path) -> None:
    """Write a fitted estimator to a JSON file atomically: the document
    lands at ``path`` complete or not at all (see :mod:`repro.atomicio`)."""
    atomic_write_text(path, json.dumps(model_to_dict(model)))


def load_model(path: str | Path):
    """Read an estimator written by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))
