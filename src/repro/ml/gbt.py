"""XGBoost-style gradient-boosted regression trees (§5.2).

The paper's nonlinear model is eXtreme Gradient Boosting [9]: "an iterative
approach in which at each iteration a new decision tree is added to correct
errors made by previous trees", combined with gain-based feature importance
scores ("the more an independent variable is used to make the main splits
within the tree, the higher its relative importance" — Figure 12).

This implementation boosts :class:`repro.ml.tree.RegressionTree` weak
learners with second-order statistics under squared-error loss, supporting
the regularisation knobs that matter for the reproduction: shrinkage
(``learning_rate``), L2 leaf penalty (``reg_lambda``), complexity penalty
(``gamma``), ``min_child_weight``, row subsampling and per-tree column
subsampling, plus early stopping on a validation split.
"""

from __future__ import annotations

import numpy as np

from repro.ml.binning import QuantileBinner
from repro.ml.forest import FlattenedForest
from repro.ml.tree import RegressionTree, TreeGrowthParams

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Gradient boosting for regression with squared-error loss.

    Parameters
    ----------
    n_estimators:
        Maximum number of trees.
    learning_rate:
        Shrinkage applied to every tree's leaf weights.
    max_depth, min_child_weight, reg_lambda, gamma:
        Passed to :class:`~repro.ml.tree.TreeGrowthParams`.
    subsample:
        Fraction of rows sampled (without replacement) per tree.
    colsample_bytree:
        Fraction of features eligible per tree.
    max_bins:
        Histogram resolution for split finding.
    early_stopping_rounds:
        If set, :meth:`fit` with ``eval_set`` stops when the validation RMSE
        fails to improve for this many consecutive rounds.
    random_state:
        Seed for row/column subsampling.
    tree_kernel:
        Histogram kernel for split finding: ``"fused"`` (single-bincount
        accumulation + sibling subtraction, the default) or ``"legacy"``
        (per-feature loop, kept as the bench baseline).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> X = rng.uniform(size=(500, 3))
    >>> y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
    >>> m = GradientBoostingRegressor(n_estimators=50, max_depth=3).fit(X, y)
    >>> float(np.abs(m.predict(X) - y).mean()) < 0.1
    True
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        colsample_bytree: float = 1.0,
        max_bins: int = 256,
        early_stopping_rounds: int | None = None,
        random_state: int | None = None,
        tree_kernel: str = "fused",
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if not 0.0 < colsample_bytree <= 1.0:
            raise ValueError("colsample_bytree must be in (0, 1]")
        if tree_kernel not in ("fused", "legacy"):
            raise ValueError(
                f"tree_kernel must be 'fused' or 'legacy', got {tree_kernel!r}"
            )
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.tree_params = TreeGrowthParams(
            max_depth=max_depth,
            min_child_weight=min_child_weight,
            reg_lambda=reg_lambda,
            gamma=gamma,
        )
        self.subsample = subsample
        self.colsample_bytree = colsample_bytree
        self.max_bins = max_bins
        self.early_stopping_rounds = early_stopping_rounds
        self.random_state = random_state
        self.tree_kernel = tree_kernel

        self.trees_: list[RegressionTree] = []
        self.base_score_: float = 0.0
        self.binner_: QuantileBinner | None = None
        self.n_features_: int | None = None
        self.train_scores_: list[float] = []
        self.eval_scores_: list[float] = []
        self.best_iteration_: int | None = None
        self._forest: FlattenedForest | None = None

    # -- fitting ----------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "GradientBoostingRegressor":
        """Fit on (X, y); optionally monitor (X_val, y_val) for early stop."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X{X.shape} y{y.shape}")
        if X.shape[0] < 2:
            raise ValueError("need at least 2 samples")
        n, self.n_features_ = X.shape
        rng = np.random.default_rng(self.random_state)

        self.binner_ = QuantileBinner(self.max_bins).fit(X)
        codes = self.binner_.transform(X)
        n_bins = self.binner_.n_bins_

        self.base_score_ = float(y.mean())
        pred = np.full(n, self.base_score_)

        val_codes = None
        val_pred = None
        y_val = None
        if eval_set is not None:
            X_val, y_val = eval_set
            y_val = np.asarray(y_val, dtype=np.float64).ravel()
            val_codes = self.binner_.transform(np.asarray(X_val, dtype=np.float64))
            val_pred = np.full(y_val.shape[0], self.base_score_)

        self.trees_ = []
        self._forest = None  # flattened snapshot is invalid once refit starts
        self.train_scores_ = []
        self.eval_scores_ = []
        best_val = np.inf
        rounds_since_best = 0
        self.best_iteration_ = None

        n_sub = max(1, int(round(self.subsample * n)))
        n_cols = max(1, int(round(self.colsample_bytree * self.n_features_)))

        hess = np.ones(n, dtype=np.float64)
        for it in range(self.n_estimators):
            grad = pred - y  # d/dpred of 1/2 (pred - y)^2

            if n_sub < n:
                rows = rng.choice(n, size=n_sub, replace=False)
            else:
                rows = None
            if n_cols < self.n_features_:
                cols = np.sort(
                    rng.choice(self.n_features_, size=n_cols, replace=False)
                )
            else:
                cols = None

            tree = RegressionTree(self.tree_params, self.max_bins, self.tree_kernel)
            if rows is None:
                tree.fit_binned(codes, grad, hess, n_bins, feature_subset=cols)
            else:
                tree.fit_binned(
                    codes[rows], grad[rows], hess[rows], n_bins, feature_subset=cols
                )
            self.trees_.append(tree)

            pred += self.learning_rate * tree.predict_binned(codes)
            self.train_scores_.append(float(np.sqrt(np.mean((pred - y) ** 2))))

            if val_codes is not None:
                val_pred += self.learning_rate * tree.predict_binned(val_codes)
                val_rmse = float(np.sqrt(np.mean((val_pred - y_val) ** 2)))
                self.eval_scores_.append(val_rmse)
                if val_rmse < best_val - 1e-12:
                    best_val = val_rmse
                    rounds_since_best = 0
                    self.best_iteration_ = it
                else:
                    rounds_since_best += 1
                    if (
                        self.early_stopping_rounds is not None
                        and rounds_since_best >= self.early_stopping_rounds
                    ):
                        # Keep only the trees up to the best iteration.
                        self.trees_ = self.trees_[: self.best_iteration_ + 1]
                        break
        return self

    # -- inference --------------------------------------------------------

    def _ensure_forest(self) -> FlattenedForest:
        """Flattened all-trees kernel, built lazily on first predict."""
        if self._forest is None:
            self._forest = FlattenedForest.from_trees(
                self.trees_, self.learning_rate, self.base_score_, self.max_bins
            )
        return self._forest

    def _check_predict_input(self, X: np.ndarray) -> np.ndarray:
        if self.binner_ is None:
            raise RuntimeError("model used before fit()")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X shape {X.shape} incompatible with {self.n_features_} features"
            )
        return X

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = self._check_predict_input(X)
        codes = self.binner_.transform(X)
        return self._ensure_forest().predict_binned(codes)

    def predict_tree_loop(self, X: np.ndarray) -> np.ndarray:
        """Reference per-tree prediction loop (the pre-flattening code path).

        Kept as the parity oracle for the forest kernel: ``predict`` must be
        bit-identical to this, which ``repro-tools bench`` fingerprints and
        ``tests/ml/test_forest.py`` asserts over randomized models.
        """
        X = self._check_predict_input(X)
        codes = self.binner_.transform(X)
        out = np.full(X.shape[0], self.base_score_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict_binned(codes)
        return out

    def staged_predict(self, X: np.ndarray):
        """Yield predictions after each boosting round (for learning curves).

        Each yielded array is an independent snapshot; accumulation happens
        in place on one buffer instead of reallocating the full vector per
        round.
        """
        X = self._check_predict_input(X)
        codes = self.binner_.transform(X)
        vals = self._ensure_forest().leaf_value_matrix(codes)
        out = np.full(codes.shape[0], self.base_score_)
        for t in range(vals.shape[0]):
            out += vals[t]
            yield out.copy()

    # -- explanation ------------------------------------------------------

    def feature_importances(self, kind: str = "gain") -> np.ndarray:
        """Aggregate per-feature importance across all trees.

        ``kind='gain'`` sums split gains (XGBoost's default explanation and
        the quantity behind Figure 12); ``kind='count'`` counts splits.
        Scores are normalised to sum to 1 (all-zeros if no splits were made).
        """
        if not self.trees_:
            raise RuntimeError("model used before fit()")
        if kind not in ("gain", "count"):
            raise ValueError(f"kind must be 'gain' or 'count', got {kind!r}")
        total = np.zeros(self.n_features_, dtype=np.float64)
        for tree in self.trees_:
            src = tree.feature_gain_ if kind == "gain" else tree.feature_count_
            if src is not None:
                total += src
        s = total.sum()
        return total / s if s > 0 else total
