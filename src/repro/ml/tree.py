"""Second-order regression tree on histogram statistics.

This is the weak learner for :class:`repro.ml.gbt.GradientBoostingRegressor`.
Following Chen & Guestrin's formulation, a split of node statistics
``(G, H)`` into ``(G_L, H_L)`` and ``(G_R, H_R)`` has gain

    1/2 * [ G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda) ] - gamma

and the optimal leaf weight is ``-G / (H + lambda)``.  With squared-error
loss, ``g_i = (yhat_i - y_i)`` and ``h_i = 1``, which also makes this class a
plain variance-reduction CART regressor when used standalone.

Split finding is histogram-based: features are pre-binned by
:class:`repro.ml.binning.QuantileBinner` and per-node (G, H) histograms are
accumulated with ``np.bincount`` — O(n) per feature per node, no sorting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.binning import QuantileBinner

__all__ = ["RegressionTree", "TreeGrowthParams"]

_LEAF = -1  # sentinel in the feature array marking a leaf node


@dataclass(frozen=True)
class TreeGrowthParams:
    """Hyperparameters controlling a single tree's growth.

    Attributes
    ----------
    max_depth:
        Maximum depth (root = depth 0).
    min_child_weight:
        Minimum sum of hessians in each child (== min samples per child for
        squared error).
    reg_lambda:
        L2 regularisation on leaf weights.
    gamma:
        Minimum gain required to make a split (complexity penalty).
    """

    max_depth: int = 6
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.min_child_weight < 0:
            raise ValueError("min_child_weight must be >= 0")
        if self.reg_lambda < 0:
            raise ValueError("reg_lambda must be >= 0")
        if self.gamma < 0:
            raise ValueError("gamma must be >= 0")


class RegressionTree:
    """A single gradient tree, stored in flat arrays for fast prediction.

    Standalone use fits squared error directly::

        tree = RegressionTree(TreeGrowthParams(max_depth=3)).fit(X, y)
        yhat = tree.predict(X)

    Inside boosting, :meth:`fit_binned` consumes pre-binned codes plus
    per-sample gradients/hessians.
    """

    def __init__(self, params: TreeGrowthParams | None = None, max_bins: int = 256):
        self.params = params or TreeGrowthParams()
        self.max_bins = max_bins
        # Flat node arrays, filled by _grow().
        self.node_feature_: np.ndarray | None = None  # int32, _LEAF for leaves
        self.node_bin_: np.ndarray | None = None      # int32 split bin code
        self.node_left_: np.ndarray | None = None     # int32 child index
        self.node_right_: np.ndarray | None = None
        self.node_value_: np.ndarray | None = None    # float64 leaf weight
        self.node_gain_: np.ndarray | None = None     # float64 split gain
        self.feature_gain_: np.ndarray | None = None  # total gain per feature
        self.feature_count_: np.ndarray | None = None # split count per feature
        self._binner: QuantileBinner | None = None    # standalone mode only

    # -- public API -------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Fit a squared-error regression tree on raw features."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X{X.shape} y{y.shape}")
        self._binner = QuantileBinner(self.max_bins).fit(X)
        codes = self._binner.transform(X)
        # Squared error with yhat = 0: g = -y, h = 1; leaf weight -G/(H+λ)
        # then approximates the (regularised) node mean of y.
        grad = -y
        hess = np.ones_like(y)
        self.fit_binned(codes, grad, hess, self._binner.n_bins_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict raw features (standalone mode: bins internally)."""
        if self._binner is None:
            raise RuntimeError(
                "predict() requires fit(); boosted trees use predict_binned()"
            )
        return self.predict_binned(self._binner.transform(X))

    def fit_binned(
        self,
        codes: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        n_bins: np.ndarray,
        feature_subset: np.ndarray | None = None,
    ) -> "RegressionTree":
        """Grow the tree on pre-binned codes with per-sample (g, h).

        Parameters
        ----------
        codes:
            uint16 array (n_samples, n_features) from
            :class:`~repro.ml.binning.QuantileBinner`.
        grad, hess:
            First and second order loss derivatives per sample.
        n_bins:
            Bin count per feature (``QuantileBinner.n_bins_``).
        feature_subset:
            Optional indices of features eligible for splits (column
            subsampling); all features by default.
        """
        codes = np.asarray(codes)
        grad = np.asarray(grad, dtype=np.float64).ravel()
        hess = np.asarray(hess, dtype=np.float64).ravel()
        if codes.ndim != 2 or codes.shape[0] != grad.shape[0]:
            raise ValueError(f"bad shapes codes{codes.shape} grad{grad.shape}")
        if grad.shape != hess.shape:
            raise ValueError("grad/hess shape mismatch")
        n_features = codes.shape[1]
        if feature_subset is None:
            feature_subset = np.arange(n_features)
        self._grow(codes, grad, hess, np.asarray(n_bins), feature_subset)
        return self

    def predict_binned(self, codes: np.ndarray) -> np.ndarray:
        """Predict on pre-binned codes (vectorised level-by-level walk)."""
        if self.node_feature_ is None:
            raise RuntimeError("tree used before fit")
        codes = np.asarray(codes)
        n = codes.shape[0]
        node = np.zeros(n, dtype=np.int64)
        # All samples descend in lock-step; at most max_depth iterations.
        for _ in range(self.params.max_depth + 1):
            feat = self.node_feature_[node]
            active = feat != _LEAF
            if not active.any():
                break
            idx = np.nonzero(active)[0]
            f = feat[idx]
            go_left = codes[idx, f] <= self.node_bin_[node[idx]]
            nxt = np.where(
                go_left, self.node_left_[node[idx]], self.node_right_[node[idx]]
            )
            node[idx] = nxt
        return self.node_value_[node]

    @property
    def n_nodes(self) -> int:
        return 0 if self.node_feature_ is None else self.node_feature_.size

    @property
    def n_leaves(self) -> int:
        if self.node_feature_ is None:
            return 0
        return int(np.sum(self.node_feature_ == _LEAF))

    # -- growth -----------------------------------------------------------

    def _grow(
        self,
        codes: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        n_bins: np.ndarray,
        feature_subset: np.ndarray,
    ) -> None:
        p = self.params
        n_features = codes.shape[1]
        max_nodes = 2 ** (p.max_depth + 1) - 1

        feature = np.full(max_nodes, _LEAF, dtype=np.int32)
        split_bin = np.zeros(max_nodes, dtype=np.int32)
        left = np.zeros(max_nodes, dtype=np.int32)
        right = np.zeros(max_nodes, dtype=np.int32)
        value = np.zeros(max_nodes, dtype=np.float64)
        gain_arr = np.zeros(max_nodes, dtype=np.float64)
        feat_gain = np.zeros(n_features, dtype=np.float64)
        feat_count = np.zeros(n_features, dtype=np.int64)

        all_rows = np.arange(codes.shape[0], dtype=np.int64)
        # Stack of (node_id, depth, row_indices).
        stack: list[tuple[int, int, np.ndarray]] = [(0, 0, all_rows)]
        next_free = 1

        while stack:
            node_id, depth, rows = stack.pop()
            g_tot = float(grad[rows].sum())
            h_tot = float(hess[rows].sum())
            value[node_id] = -g_tot / (h_tot + p.reg_lambda)

            if depth >= p.max_depth or h_tot < 2.0 * p.min_child_weight:
                continue

            best = self._best_split(
                codes, grad, hess, rows, g_tot, h_tot, n_bins, feature_subset
            )
            if best is None:
                continue
            bfeat, bbin, bgain = best

            mask = codes[rows, bfeat] <= bbin
            rows_l = rows[mask]
            rows_r = rows[~mask]
            # Guard against degenerate splits (shouldn't pass gain check, but
            # defend the invariant that children are non-empty).
            if rows_l.size == 0 or rows_r.size == 0:
                continue

            feature[node_id] = bfeat
            split_bin[node_id] = bbin
            gain_arr[node_id] = bgain
            feat_gain[bfeat] += bgain
            feat_count[bfeat] += 1
            left[node_id] = next_free
            right[node_id] = next_free + 1
            stack.append((next_free, depth + 1, rows_l))
            stack.append((next_free + 1, depth + 1, rows_r))
            next_free += 2

        self.node_feature_ = feature[:next_free]
        self.node_bin_ = split_bin[:next_free]
        self.node_left_ = left[:next_free]
        self.node_right_ = right[:next_free]
        self.node_value_ = value[:next_free]
        self.node_gain_ = gain_arr[:next_free]
        self.feature_gain_ = feat_gain
        self.feature_count_ = feat_count

    def _best_split(
        self,
        codes: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        g_tot: float,
        h_tot: float,
        n_bins: np.ndarray,
        feature_subset: np.ndarray,
    ) -> tuple[int, int, float] | None:
        """Scan histogram cut points over the feature subset; return the best
        (feature, bin, gain) with gain > 0, or None."""
        p = self.params
        parent_score = g_tot * g_tot / (h_tot + p.reg_lambda)
        g_rows = grad[rows]
        h_rows = hess[rows]

        best_gain = 0.0
        best_feat = -1
        best_bin = -1
        for f in feature_subset:
            nb = int(n_bins[f])
            if nb < 2:
                continue
            col = codes[rows, f]
            hist_g = np.bincount(col, weights=g_rows, minlength=nb)
            hist_h = np.bincount(col, weights=h_rows, minlength=nb)
            # Cut after bin b: left = bins [0..b], for b in [0, nb-2].
            gl = np.cumsum(hist_g)[:-1]
            hl = np.cumsum(hist_h)[:-1]
            gr = g_tot - gl
            hr = h_tot - hl
            dl = hl + p.reg_lambda
            dr = hr + p.reg_lambda
            # With reg_lambda == 0 an empty side has a zero denominator;
            # such cuts are never valid splits, so mask them out.
            ok = (
                (hl >= p.min_child_weight)
                & (hr >= p.min_child_weight)
                & (dl > 0.0)
                & (dr > 0.0)
            )
            if not ok.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = 0.5 * (gl * gl / dl + gr * gr / dr - parent_score) - p.gamma
            gains[~ok] = -np.inf
            b = int(np.argmax(gains))
            if gains[b] > best_gain:
                best_gain = float(gains[b])
                best_feat = int(f)
                best_bin = b
        if best_feat < 0:
            return None
        return best_feat, best_bin, best_gain
