"""Second-order regression tree on histogram statistics.

This is the weak learner for :class:`repro.ml.gbt.GradientBoostingRegressor`.
Following Chen & Guestrin's formulation, a split of node statistics
``(G, H)`` into ``(G_L, H_L)`` and ``(G_R, H_R)`` has gain

    1/2 * [ G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda) ] - gamma

and the optimal leaf weight is ``-G / (H + lambda)``.  With squared-error
loss, ``g_i = (yhat_i - y_i)`` and ``h_i = 1``, which also makes this class a
plain variance-reduction CART regressor when used standalone.

Split finding is histogram-based: features are pre-binned by
:class:`repro.ml.binning.QuantileBinner` and per-node (G, H) histograms are
accumulated with ``np.bincount`` — O(n) per feature per node, no sorting.

Two histogram kernels are available (``kernel=`` on the constructor):

``"fused"`` (default)
    One ``np.bincount`` over ``offset + code`` keys accumulates *all*
    features' histograms at once, the gain scan runs vectorised over the
    concatenated bin space, and each split computes the histogram for the
    smaller child only — the larger child is ``parent - sibling``
    (LightGBM's subtraction trick), skipping roughly half the histogram
    work per level.
``"legacy"``
    The original per-feature loop.  Kept as the head-to-head baseline for
    ``repro-tools bench`` (``gbt_training`` speedup is measured against
    it).

Both kernels optimise the same gain objective; the fused kernel's
histogram sums round differently at the ulp level (global vs per-feature
cumsum order, sibling subtraction), so grown trees may differ on exact
gain ties — accuracy is equivalent, and prediction-side parity gates
operate on a fixed fitted model, not across training kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.binning import QuantileBinner

__all__ = ["RegressionTree", "TreeGrowthParams"]

_LEAF = -1  # sentinel in the feature array marking a leaf node


@dataclass(frozen=True)
class TreeGrowthParams:
    """Hyperparameters controlling a single tree's growth.

    Attributes
    ----------
    max_depth:
        Maximum depth (root = depth 0).
    min_child_weight:
        Minimum sum of hessians in each child (== min samples per child for
        squared error).
    reg_lambda:
        L2 regularisation on leaf weights.
    gamma:
        Minimum gain required to make a split (complexity penalty).
    """

    max_depth: int = 6
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.min_child_weight < 0:
            raise ValueError("min_child_weight must be >= 0")
        if self.reg_lambda < 0:
            raise ValueError("reg_lambda must be >= 0")
        if self.gamma < 0:
            raise ValueError("gamma must be >= 0")


class RegressionTree:
    """A single gradient tree, stored in flat arrays for fast prediction.

    Standalone use fits squared error directly::

        tree = RegressionTree(TreeGrowthParams(max_depth=3)).fit(X, y)
        yhat = tree.predict(X)

    Inside boosting, :meth:`fit_binned` consumes pre-binned codes plus
    per-sample gradients/hessians.
    """

    def __init__(
        self,
        params: TreeGrowthParams | None = None,
        max_bins: int = 256,
        kernel: str = "fused",
    ):
        if kernel not in ("fused", "legacy"):
            raise ValueError(f"kernel must be 'fused' or 'legacy', got {kernel!r}")
        self.params = params or TreeGrowthParams()
        self.max_bins = max_bins
        self.kernel = kernel
        # Flat node arrays, filled by _grow().
        self.node_feature_: np.ndarray | None = None  # int32, _LEAF for leaves
        self.node_bin_: np.ndarray | None = None      # int32 split bin code
        self.node_left_: np.ndarray | None = None     # int32 child index
        self.node_right_: np.ndarray | None = None
        self.node_value_: np.ndarray | None = None    # float64 leaf weight
        self.node_gain_: np.ndarray | None = None     # float64 split gain
        self.feature_gain_: np.ndarray | None = None  # total gain per feature
        self.feature_count_: np.ndarray | None = None # split count per feature
        self._binner: QuantileBinner | None = None    # standalone mode only

    # -- public API -------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Fit a squared-error regression tree on raw features."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X{X.shape} y{y.shape}")
        self._binner = QuantileBinner(self.max_bins).fit(X)
        codes = self._binner.transform(X)
        # Squared error with yhat = 0: g = -y, h = 1; leaf weight -G/(H+λ)
        # then approximates the (regularised) node mean of y.
        grad = -y
        hess = np.ones_like(y)
        self.fit_binned(codes, grad, hess, self._binner.n_bins_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict raw features (standalone mode: bins internally)."""
        if self._binner is None:
            raise RuntimeError(
                "predict() requires fit(); boosted trees use predict_binned()"
            )
        return self.predict_binned(self._binner.transform(X))

    def fit_binned(
        self,
        codes: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        n_bins: np.ndarray,
        feature_subset: np.ndarray | None = None,
    ) -> "RegressionTree":
        """Grow the tree on pre-binned codes with per-sample (g, h).

        Parameters
        ----------
        codes:
            uint16 array (n_samples, n_features) from
            :class:`~repro.ml.binning.QuantileBinner`.
        grad, hess:
            First and second order loss derivatives per sample.
        n_bins:
            Bin count per feature (``QuantileBinner.n_bins_``).
        feature_subset:
            Optional indices of features eligible for splits (column
            subsampling); all features by default.
        """
        codes = np.asarray(codes)
        grad = np.asarray(grad, dtype=np.float64).ravel()
        hess = np.asarray(hess, dtype=np.float64).ravel()
        if codes.ndim != 2 or codes.shape[0] != grad.shape[0]:
            raise ValueError(f"bad shapes codes{codes.shape} grad{grad.shape}")
        if grad.shape != hess.shape:
            raise ValueError("grad/hess shape mismatch")
        n_features = codes.shape[1]
        if feature_subset is None:
            feature_subset = np.arange(n_features)
        self._grow(codes, grad, hess, np.asarray(n_bins), feature_subset)
        return self

    def predict_binned(self, codes: np.ndarray) -> np.ndarray:
        """Predict on pre-binned codes (vectorised level-by-level walk)."""
        if self.node_feature_ is None:
            raise RuntimeError("tree used before fit")
        codes = np.asarray(codes)
        n = codes.shape[0]
        node = np.zeros(n, dtype=np.int64)
        # All samples descend in lock-step; at most max_depth iterations.
        for _ in range(self.params.max_depth + 1):
            feat = self.node_feature_[node]
            active = feat != _LEAF
            if not active.any():
                break
            idx = np.nonzero(active)[0]
            f = feat[idx]
            go_left = codes[idx, f] <= self.node_bin_[node[idx]]
            nxt = np.where(
                go_left, self.node_left_[node[idx]], self.node_right_[node[idx]]
            )
            node[idx] = nxt
        return self.node_value_[node]

    @property
    def n_nodes(self) -> int:
        return 0 if self.node_feature_ is None else self.node_feature_.size

    @property
    def n_leaves(self) -> int:
        if self.node_feature_ is None:
            return 0
        return int(np.sum(self.node_feature_ == _LEAF))

    # -- growth -----------------------------------------------------------

    def _grow(
        self,
        codes: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        n_bins: np.ndarray,
        feature_subset: np.ndarray,
    ) -> None:
        p = self.params
        n_features = codes.shape[1]
        max_nodes = 2 ** (p.max_depth + 1) - 1

        feature = np.full(max_nodes, _LEAF, dtype=np.int32)
        split_bin = np.zeros(max_nodes, dtype=np.int32)
        left = np.zeros(max_nodes, dtype=np.int32)
        right = np.zeros(max_nodes, dtype=np.int32)
        value = np.zeros(max_nodes, dtype=np.float64)
        gain_arr = np.zeros(max_nodes, dtype=np.float64)
        feat_gain = np.zeros(n_features, dtype=np.float64)
        feat_count = np.zeros(n_features, dtype=np.int64)

        fused = self.kernel == "fused"
        if fused:
            # Concatenated bin space: feature f's bins live at
            # [offsets[f], offsets[f+1]); one bincount over offset+code keys
            # fills every feature's histogram in a single pass.
            nb = np.asarray(n_bins, dtype=np.int64)
            offsets = np.zeros(n_features + 1, dtype=np.int64)
            np.cumsum(nb, out=offsets[1:])
            total_bins = int(offsets[-1])
            pos_feat = np.repeat(np.arange(n_features, dtype=np.int64), nb)
            allowed = np.zeros(total_bins, dtype=bool)
            for f in np.asarray(feature_subset, dtype=np.int64):
                if nb[f] >= 2:
                    # Valid cuts are "after bin b" for b in [0, nb-2].
                    allowed[offsets[f] : offsets[f] + nb[f] - 1] = True
            off_codes = codes.astype(np.int64) + offsets[:-1][None, :]

            def node_hist(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
                keys = off_codes[rows].reshape(-1)
                hg = np.bincount(
                    keys,
                    weights=np.repeat(grad[rows], n_features),
                    minlength=total_bins,
                )
                hh = np.bincount(
                    keys,
                    weights=np.repeat(hess[rows], n_features),
                    minlength=total_bins,
                )
                return hg, hh

        all_rows = np.arange(codes.shape[0], dtype=np.int64)
        # Stack of (node_id, depth, row_indices, hist_g, hist_h); histograms
        # ride along only in the fused kernel (None = compute on demand).
        stack: list = [(0, 0, all_rows, None, None)]
        next_free = 1

        while stack:
            node_id, depth, rows, hist_g, hist_h = stack.pop()
            g_tot = float(grad[rows].sum())
            h_tot = float(hess[rows].sum())
            value[node_id] = -g_tot / (h_tot + p.reg_lambda)

            if depth >= p.max_depth or h_tot < 2.0 * p.min_child_weight:
                continue

            if fused:
                if hist_g is None:
                    hist_g, hist_h = node_hist(rows)
                best = self._best_split_fused(
                    hist_g, hist_h, g_tot, h_tot, offsets, allowed, pos_feat
                )
            else:
                best = self._best_split(
                    codes, grad, hess, rows, g_tot, h_tot, n_bins, feature_subset
                )
            if best is None:
                continue
            bfeat, bbin, bgain = best

            mask = codes[rows, bfeat] <= bbin
            rows_l = rows[mask]
            rows_r = rows[~mask]
            # Guard against degenerate splits (shouldn't pass gain check, but
            # defend the invariant that children are non-empty).
            if rows_l.size == 0 or rows_r.size == 0:
                continue

            feature[node_id] = bfeat
            split_bin[node_id] = bbin
            gain_arr[node_id] = bgain
            feat_gain[bfeat] += bgain
            feat_count[bfeat] += 1
            left[node_id] = next_free
            right[node_id] = next_free + 1
            hg_l = hh_l = hg_r = hh_r = None
            if fused and depth + 1 < p.max_depth:
                # Sibling subtraction: bincount only the smaller child, the
                # larger one is parent minus sibling.  Children at max depth
                # never split, so their histograms are never materialised.
                if rows_l.size <= rows_r.size:
                    hg_l, hh_l = node_hist(rows_l)
                    hg_r = hist_g - hg_l
                    hh_r = hist_h - hh_l
                else:
                    hg_r, hh_r = node_hist(rows_r)
                    hg_l = hist_g - hg_r
                    hh_l = hist_h - hh_r
            stack.append((next_free, depth + 1, rows_l, hg_l, hh_l))
            stack.append((next_free + 1, depth + 1, rows_r, hg_r, hh_r))
            next_free += 2

        self.node_feature_ = feature[:next_free]
        self.node_bin_ = split_bin[:next_free]
        self.node_left_ = left[:next_free]
        self.node_right_ = right[:next_free]
        self.node_value_ = value[:next_free]
        self.node_gain_ = gain_arr[:next_free]
        self.feature_gain_ = feat_gain
        self.feature_count_ = feat_count

    def _best_split_fused(
        self,
        hist_g: np.ndarray,
        hist_h: np.ndarray,
        g_tot: float,
        h_tot: float,
        offsets: np.ndarray,
        allowed: np.ndarray,
        pos_feat: np.ndarray,
    ) -> tuple[int, int, float] | None:
        """Vectorised gain scan over the concatenated bin space.

        ``allowed`` masks out each feature's last bin (no cut after it),
        features outside the subsample, and single-bin features, so one
        ``argmax`` over all features replaces the per-feature python loop.
        """
        p = self.params
        parent_score = g_tot * g_tot / (h_tot + p.reg_lambda)
        cg = np.cumsum(hist_g)
        ch = np.cumsum(hist_h)
        # Per-feature left sums: global cumsum minus the cumsum just before
        # the feature's segment starts.
        base_g = np.empty_like(cg)
        base_g[0] = 0.0
        base_g[1:] = cg[:-1]
        base_h = np.empty_like(ch)
        base_h[0] = 0.0
        base_h[1:] = ch[:-1]
        seg_base_g = base_g[offsets[:-1]].take(pos_feat)
        seg_base_h = base_h[offsets[:-1]].take(pos_feat)
        gl = cg - seg_base_g
        hl = ch - seg_base_h
        gr = g_tot - gl
        hr = h_tot - hl
        dl = hl + p.reg_lambda
        dr = hr + p.reg_lambda
        ok = (
            allowed
            & (hl >= p.min_child_weight)
            & (hr >= p.min_child_weight)
            & (dl > 0.0)
            & (dr > 0.0)
        )
        if not ok.any():
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            gains = 0.5 * (gl * gl / dl + gr * gr / dr - parent_score) - p.gamma
        gains[~ok] = -np.inf
        b = int(np.argmax(gains))
        if not gains[b] > 0.0:
            return None
        f = int(pos_feat[b])
        return f, int(b - offsets[f]), float(gains[b])

    def _best_split(
        self,
        codes: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        rows: np.ndarray,
        g_tot: float,
        h_tot: float,
        n_bins: np.ndarray,
        feature_subset: np.ndarray,
    ) -> tuple[int, int, float] | None:
        """Scan histogram cut points over the feature subset; return the best
        (feature, bin, gain) with gain > 0, or None."""
        p = self.params
        parent_score = g_tot * g_tot / (h_tot + p.reg_lambda)
        g_rows = grad[rows]
        h_rows = hess[rows]

        best_gain = 0.0
        best_feat = -1
        best_bin = -1
        for f in feature_subset:
            nb = int(n_bins[f])
            if nb < 2:
                continue
            col = codes[rows, f]
            hist_g = np.bincount(col, weights=g_rows, minlength=nb)
            hist_h = np.bincount(col, weights=h_rows, minlength=nb)
            # Cut after bin b: left = bins [0..b], for b in [0, nb-2].
            gl = np.cumsum(hist_g)[:-1]
            hl = np.cumsum(hist_h)[:-1]
            gr = g_tot - gl
            hr = h_tot - hl
            dl = hl + p.reg_lambda
            dr = hr + p.reg_lambda
            # With reg_lambda == 0 an empty side has a zero denominator;
            # such cuts are never valid splits, so mask them out.
            ok = (
                (hl >= p.min_child_weight)
                & (hr >= p.min_child_weight)
                & (dl > 0.0)
                & (dr > 0.0)
            )
            if not ok.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = 0.5 * (gl * gl / dl + gr * gr / dr - parent_score) - p.gamma
            gains[~ok] = -np.inf
            b = int(np.argmax(gains))
            if gains[b] > best_gain:
                best_gain = float(gains[b])
                best_feat = int(f)
                best_bin = b
        if best_feat < 0:
            return None
        return best_feat, best_bin, best_gain
