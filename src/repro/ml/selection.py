"""Dataset splitting and feature elimination helpers.

§5.1: "we randomly select 70% of the log data to train the model and the
other 30% to test"; "C and P are eliminated for all edges because they do
not vary greatly in the log data" (the red crosses of Figures 9 and 12).
"""

from __future__ import annotations

import numpy as np

__all__ = ["train_test_split", "low_variance_features"]


def train_test_split(
    n_samples: int,
    train_fraction: float = 0.7,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (train_idx, test_idx) as a random permutation split.

    Both sides are guaranteed non-empty for ``n_samples >= 2``.
    """
    if n_samples < 2:
        raise ValueError(f"need >= 2 samples to split, got {n_samples}")
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    perm = rng.permutation(n_samples)
    n_train = int(round(train_fraction * n_samples))
    n_train = min(max(n_train, 1), n_samples - 1)
    return np.sort(perm[:n_train]), np.sort(perm[n_train:])


def low_variance_features(
    X: np.ndarray,
    threshold: float = 1e-3,
    relative: bool = True,
) -> np.ndarray:
    """Boolean mask of features whose variation is below ``threshold``.

    With ``relative=True`` (default), a feature is flagged when its
    coefficient of variation ``std / max(|mean|, eps)`` falls below the
    threshold — matching the paper's "do not vary greatly" criterion, which
    is about spread relative to the feature's magnitude.  All-zero columns
    are always flagged.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    std = X.std(axis=0)
    if not relative:
        return std < threshold
    scale = np.maximum(np.abs(X.mean(axis=0)), 1e-12)
    return (std / scale) < threshold
