"""Flattened forest kernel: all trees of a fitted GBT in one node table.

:class:`~repro.ml.tree.RegressionTree` already predicts with a vectorised
level-by-level walk, but a boosted model pays that walk once *per tree* —
``n_estimators`` rounds of python dispatch, per-tree gathers, and a fresh
output vector each round.  :class:`FlattenedForest` packs every tree's node
arrays into one contiguous table and descends **all samples through all
trees at once**: each traversal level is a handful of ``np.take`` gathers
over ``n_samples * n_trees`` lanes.

Layout
------
Node records for tree ``t`` occupy rows ``roots[t] .. roots[t+1]`` of four
parallel arrays:

``feature_``  int32   split feature (0 for leaves)
``bin_``      int32   split bin code (``_LEAF_BIN`` sentinel for leaves)
``left_``     int64   *global* index of the left child; leaves self-loop
``value_``    float64 leaf weight, pre-scaled by the learning rate

Two invariants make the walk branch-free:

* ``right == left + 1`` (guaranteed by ``RegressionTree._grow``), so the
  next node is ``left.take(node) + (code > bin)``.
* Leaves self-loop with an impossibly large split bin, so lanes that reach
  a leaf early simply stay put — no "active" mask is ever needed.

When every bin code fits in 15 bits (``max_bins <= 0x7FFF``, true for any
practical binner configuration) the kernel uses a *packed* table
``(bin << 16) | feature`` and pre-shifted codes so that one int32 gather
yields both halves of the comparison::

    (code << 16) > ((bin << 16) | feature)   <=>   code > bin

since ``feature >= 0`` and the shifted code has zero low bits.  Larger bin
spaces fall back to an unpacked two-gather compare with identical results.

Bit-exactness
-------------
Leaf values are accumulated **sequentially in tree order** (never
``np.sum``, whose pairwise reduction rounds differently), and the learning
rate is folded into the leaf values at flatten time — ``lr * leaf`` is the
exact same scalar multiply the per-tree loop performs.  The result is
bit-identical to ``base_score + sum_t lr * tree_t.predict_binned(codes)``;
``tests/ml/test_forest.py`` pins this property over randomized models.

All gathers run with ``mode='clip'`` — indices are in range by
construction, and skipping numpy's bounds-check fault path roughly halves
gather cost on large lane counts.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ml.tree import RegressionTree

__all__ = ["FlattenedForest", "forest_totals", "reset_forest_totals"]

_LEAF_BIN = 0x7FFF  # packed-path leaf sentinel: greater than any packable bin
_LEAF_BIN_WIDE = np.iinfo(np.int32).max  # unpacked-path leaf sentinel
_MAX_PACKED_BINS = 0x7FFF  # packed compare needs code << 16 to fit in int32

# Module-wide totals mirrored into serving metrics
# (``ml_forest_builds_total`` / ``ml_forest_predict_seconds_total``).
_TOTALS = {"builds": 0, "predict_seconds": 0.0}


def forest_totals() -> dict[str, float]:
    """Snapshot of cumulative forest builds and kernel predict seconds."""
    return {
        "builds": _TOTALS["builds"],
        "predict_seconds": _TOTALS["predict_seconds"],
    }


def reset_forest_totals() -> None:
    """Zero the module counters (test isolation only)."""
    _TOTALS["builds"] = 0
    _TOTALS["predict_seconds"] = 0.0


class FlattenedForest:
    """Contiguous all-trees node table with a vectorised traversal kernel.

    Build with :meth:`from_trees`; predict with :meth:`predict_binned` on
    codes from the model's :class:`~repro.ml.binning.QuantileBinner`.
    Instances are immutable snapshots of a fitted model — refitting the
    model must discard and rebuild the forest.
    """

    # Rows per traversal chunk are sized so ``chunk * n_trees`` lanes keep
    # every scratch buffer cache-resident; 64k lanes measured fastest on
    # the bench shapes (raising it degrades toward memory bandwidth).
    _TARGET_LANES = 65536

    def __init__(
        self,
        feature: np.ndarray,
        bin_: np.ndarray,
        left: np.ndarray,
        value: np.ndarray,
        roots: np.ndarray,
        max_depth: int,
        base_score: float,
        max_bins: int,
    ) -> None:
        self.feature_ = feature
        self.bin_ = bin_
        self.left_ = left
        self.value_ = value
        self.roots_ = roots
        self.max_depth = int(max_depth)
        self.base_score = float(base_score)
        self.max_bins = int(max_bins)
        self.n_trees = int(roots.shape[0])
        self.packed_ = None
        if max_bins <= _MAX_PACKED_BINS:
            # (bin << 16) | feature in one int32 word; leaves get the
            # _LEAF_BIN sentinel so any shifted code compares below them.
            self.packed_ = ((bin_.astype(np.int64) << 16) | feature).astype(
                np.int32
            )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_trees(
        cls,
        trees: Sequence["RegressionTree"],
        learning_rate: float,
        base_score: float,
        max_bins: int,
    ) -> "FlattenedForest":
        """Flatten fitted trees into one table (leaf self-loops, lr folded)."""
        n_nodes = sum(t.node_feature_.shape[0] for t in trees)
        feature = np.zeros(n_nodes, dtype=np.int32)
        bin_ = np.zeros(n_nodes, dtype=np.int32)
        left = np.zeros(n_nodes, dtype=np.int64)
        value = np.zeros(n_nodes, dtype=np.float64)
        roots = np.zeros(len(trees), dtype=np.int64)
        leaf_bin = _LEAF_BIN if max_bins <= _MAX_PACKED_BINS else _LEAF_BIN_WIDE
        max_depth = 0
        off = 0
        for i, tree in enumerate(trees):
            nn = tree.node_feature_.shape[0]
            sl = slice(off, off + nn)
            f = tree.node_feature_.astype(np.int32, copy=True)
            b = tree.node_bin_.astype(np.int32, copy=True)
            lf = tree.node_left_.astype(np.int64, copy=True)
            is_leaf = f < 0
            f[is_leaf] = 0
            b[is_leaf] = leaf_bin
            lf[is_leaf] = np.nonzero(is_leaf)[0]
            feature[sl] = f
            bin_[sl] = b
            left[sl] = lf + off
            # lr * leaf is the exact scalar multiply the per-tree loop does;
            # folding it here keeps accumulation bit-identical.
            value[sl] = learning_rate * tree.node_value_
            roots[i] = off
            max_depth = max(max_depth, tree.params.max_depth)
            off += nn
        _TOTALS["builds"] += 1
        return cls(
            feature, bin_, left, value, roots, max_depth, base_score, max_bins
        )

    @property
    def n_nodes(self) -> int:
        return int(self.feature_.shape[0])

    # -- prediction --------------------------------------------------------

    def predict_binned(self, codes: np.ndarray) -> np.ndarray:
        """Predict from bin codes; bit-identical to the per-tree loop."""
        t0 = time.perf_counter()
        n = codes.shape[0]
        out = np.full(n, self.base_score, dtype=np.float64)
        if self.n_trees and n:
            self._accumulate(codes, out, None)
        _TOTALS["predict_seconds"] += time.perf_counter() - t0
        return out

    def leaf_value_matrix(self, codes: np.ndarray) -> np.ndarray:
        """Per-tree scaled leaf contributions, shape ``(n_trees, n)``.

        ``base_score + vals[:t+1].sum(axis=0)`` reproduces staged
        prediction; :meth:`predict_binned` is the ``t = n_trees - 1`` row
        sum.  Used by ``GradientBoostingRegressor.staged_predict``.
        """
        t0 = time.perf_counter()
        n = codes.shape[0]
        vals = np.empty((self.n_trees, n), dtype=np.float64)
        if self.n_trees and n:
            self._accumulate(codes, None, vals)
        _TOTALS["predict_seconds"] += time.perf_counter() - t0
        return vals

    # -- kernel ------------------------------------------------------------

    def _accumulate(
        self,
        codes: np.ndarray,
        out: np.ndarray | None,
        vals_out: np.ndarray | None,
    ) -> None:
        n = codes.shape[0]
        n_features = codes.shape[1]
        T = self.n_trees
        packed = self.packed_
        if packed is not None:
            # Pre-shift codes once so the per-level compare is one gather.
            codes32 = np.ascontiguousarray(codes, dtype=np.int32)
            codes32 = np.left_shift(codes32, 16)
        else:
            codes32 = np.ascontiguousarray(codes, dtype=np.int32)

        chunk = max(1, min(n, self._TARGET_LANES // max(T, 1)))
        lanes = T * chunk
        node = np.empty(lanes, dtype=np.int64)
        cidx = np.empty(lanes, dtype=np.int64)
        w = np.empty(lanes, dtype=np.int32)
        f = np.empty(lanes, dtype=np.int32)
        c = np.empty(lanes, dtype=np.int32)
        go = np.empty(lanes, dtype=np.bool_)
        row_base = np.arange(chunk, dtype=np.int64) * n_features

        for s in range(0, n, chunk):
            e = min(s + chunk, n)
            cn = e - s
            L = T * cn
            cflat = codes32[s:e].reshape(-1)
            nd = node[:L]
            nd.reshape(T, cn)[:] = self.roots_[:, None]
            ww, ff, cc, ci, gg = w[:L], f[:L], c[:L], cidx[:L], go[:L]
            rb = row_base[:cn]
            for _ in range(self.max_depth):
                if packed is not None:
                    np.take(packed, nd, out=ww, mode="clip")
                    np.bitwise_and(ww, 0xFFFF, out=ff)
                else:
                    np.take(self.feature_, nd, out=ff, mode="clip")
                np.add(
                    rb[None, :],
                    ff.reshape(T, cn),
                    out=ci.reshape(T, cn),
                    casting="unsafe",
                )
                np.take(cflat, ci, out=cc, mode="clip")
                if packed is not None:
                    np.greater(cc, ww, out=gg)
                else:
                    np.take(self.bin_, nd, out=ww, mode="clip")
                    np.greater(cc, ww, out=gg)
                np.take(self.left_, nd, out=nd, mode="clip")
                np.add(nd, gg, out=nd, casting="unsafe")
            leaf = self.value_.take(nd, mode="clip").reshape(T, cn)
            if vals_out is not None:
                vals_out[:, s:e] = leaf
            if out is not None:
                o = out[s:e]
                # Sequential tree-order accumulation; np.sum's pairwise
                # reduction would round differently.
                for t in range(T):
                    o += leaf[t]
