"""Zero-mean / unit-variance feature normalisation.

§5 of the paper: "we normalize each input x_i to have zero mean and unit
variance, setting x' = (x_i - mean(x_i)) / sigma_i".  Constant columns get a
unit divisor so they map to all-zeros instead of NaN (the paper instead drops
them; see :func:`repro.ml.selection.low_variance_features`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Column-wise standardisation fitted on training data.

    Parameters
    ----------
    ddof:
        Delta degrees of freedom for the standard-deviation estimate.
        0 (population std) matches the paper's formulation.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[1.0, 10.0], [3.0, 10.0]])
    >>> s = StandardScaler().fit(X)
    >>> s.transform(X)[:, 0].tolist()
    [-1.0, 1.0]
    """

    def __init__(self, ddof: int = 0) -> None:
        self.ddof = ddof
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    # -- fitting ---------------------------------------------------------

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and scale from ``X`` (n_samples, n_features)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D array, got shape {X.shape}")
        if X.shape[0] <= self.ddof:
            raise ValueError(
                f"need more than ddof={self.ddof} samples, got {X.shape[0]}"
            )
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0, ddof=self.ddof)
        # (Near-)constant columns: a column of identical large values can
        # produce a tiny nonzero std from rounding; dividing by it would
        # amplify noise.  Use a relative tolerance and divide by 1 instead,
        # so transform() yields (near-)zeros for such columns.
        tiny = 1e-10 * np.maximum(np.abs(self.mean_), 1.0)
        scale[scale <= tiny] = 1.0
        self.scale_ = scale
        return self

    def _check_fitted(self) -> None:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler used before fit()")

    # -- transforms ------------------------------------------------------

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Standardise ``X`` with the fitted statistics."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Xt: np.ndarray) -> np.ndarray:
        """Map standardised values back to the original feature space."""
        self._check_fitted()
        Xt = np.asarray(Xt, dtype=np.float64)
        return Xt * self.scale_ + self.mean_
