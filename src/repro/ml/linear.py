"""Ordinary-least-squares linear regression (§5.1).

The paper fits ``R_i = beta_0 + beta_1 x_i1 + ... + beta_m x_im`` per edge by
minimising the residual sum of squares (Eq. 3–4), on standardised inputs.
Because inputs are standardised, the magnitude of each coefficient is directly
comparable across features and is what Figure 9 plots ("relative significance
of features in the linear model").

We solve via ``numpy.linalg.lstsq`` (SVD-backed), which stays stable when
features are collinear — common here because stream counts S are near
multiples of contending rates K on some edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LinearRegression", "CoefficientReport"]


@dataclass
class CoefficientReport:
    """Named view of a fitted linear model, for explanation (Figure 9).

    Attributes
    ----------
    feature_names:
        Names aligned with :attr:`coefficients`.
    coefficients:
        Raw fitted betas (excluding the intercept).
    relative_significance:
        ``|beta| / max|beta|`` — the bubble sizes of Figure 9, where each
        edge's coefficients are scaled by the edge's maximum.
    intercept:
        beta_0.
    """

    feature_names: list[str]
    coefficients: np.ndarray
    intercept: float
    relative_significance: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        mags = np.abs(self.coefficients)
        top = mags.max() if mags.size else 0.0
        self.relative_significance = mags / top if top > 0 else mags

    def ranked(self) -> list[tuple[str, float]]:
        """(name, relative significance), most significant first."""
        order = np.argsort(-self.relative_significance)
        return [
            (self.feature_names[i], float(self.relative_significance[i]))
            for i in order
        ]


class LinearRegression:
    """Least-squares linear model with optional intercept.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.array([[0.0], [1.0], [2.0]])
    >>> y = np.array([1.0, 3.0, 5.0])
    >>> m = LinearRegression().fit(X, y)
    >>> round(m.intercept_, 6), round(float(m.coef_[0]), 6)
    (1.0, 2.0)
    """

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.rank_: int | None = None
        self.singular_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if X.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        if self.fit_intercept:
            A = np.hstack([np.ones((X.shape[0], 1)), X])
        else:
            A = X
        beta, _residuals, rank, sv = np.linalg.lstsq(A, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(beta[0])
            self.coef_ = beta[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = beta
        self.rank_ = int(rank)
        self.singular_ = sv
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LinearRegression used before fit()")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X shape {X.shape} incompatible with {self.coef_.shape[0]} "
                "fitted coefficients"
            )
        return X @ self.coef_ + self.intercept_

    def coefficient_report(self, feature_names: list[str]) -> CoefficientReport:
        """Build the Figure 9 explanation view of this model."""
        if self.coef_ is None:
            raise RuntimeError("LinearRegression used before fit()")
        if len(feature_names) != self.coef_.shape[0]:
            raise ValueError(
                f"{len(feature_names)} names for {self.coef_.shape[0]} coefficients"
            )
        return CoefficientReport(
            feature_names=list(feature_names),
            coefficients=self.coef_.copy(),
            intercept=self.intercept_,
        )
