"""Crash-safe file writes shared across the persistence layers.

Every durable artifact the repo writes — model JSON, state snapshots,
metrics exports — must never be observable half-written at its final
path: a scheduler that loads a truncated model JSON mid-crash is worse
than one that loads yesterday's.  The standard POSIX recipe is used
throughout:

1. write the full payload to a temporary file *in the same directory*
   (same filesystem, so the final rename cannot degrade to a copy);
2. flush and ``os.fsync`` the temp file so the bytes are on disk before
   the rename makes them visible;
3. ``os.replace`` onto the final path — atomic on POSIX and Windows;
4. best-effort fsync of the containing directory so the rename itself
   survives a power cut.

A crash at any step leaves either the old file or the new file at the
final path, never a mixture, never a truncation.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "checksum_payload",
]


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so a completed rename survives power
    loss.  Best-effort: some filesystems (and Windows) refuse O_RDONLY
    directory handles, and losing only the *rename* is recoverable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | Path,
    data: bytes,
    fsync: bool = True,
    _fault=None,
) -> None:
    """Write ``data`` to ``path`` atomically (write-temp -> fsync ->
    ``os.replace``).

    ``_fault`` is a test hook: a callable invoked with the stage name
    (``"written"``, ``"synced"``, ``"replaced"``) at each step; raising
    from it simulates a crash at that point.  The guarantee under test:
    the final path never holds a partial payload, whichever stage dies.
    """
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with tmp.open("wb") as fh:
            fh.write(data)
            if _fault is not None:
                _fault("written")
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        if _fault is not None:
            _fault("synced")
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise
    if _fault is not None:
        _fault("replaced")
    if fsync:
        _fsync_dir(path.parent)


def atomic_write_text(
    path: str | Path,
    text: str,
    encoding: str = "utf-8",
    fsync: bool = True,
    _fault=None,
) -> None:
    """Text-mode counterpart of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync, _fault=_fault)


def atomic_write_json(
    path: str | Path,
    payload,
    indent: int | None = None,
    fsync: bool = True,
) -> None:
    """Serialise ``payload`` as strict JSON (no NaN/Infinity tokens) and
    write it atomically."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, allow_nan=False), fsync=fsync
    )


def checksum_payload(payload: dict, exclude: str = "checksum") -> str:
    """Hex SHA-256 over the canonical (sorted-keys) JSON encoding of
    ``payload`` with the ``exclude`` key removed — the shared integrity
    checksum for model artifacts and state snapshots.  Canonical encoding
    makes the checksum independent of dict insertion order."""
    reduced = {k: v for k, v in payload.items() if k != exclude}
    encoded = json.dumps(reduced, sort_keys=True, allow_nan=False)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
