"""Transfer optimization advisory built on the trained models (§8).

The paper's conclusions point at two levers: "aggregate performance can be
improved by scheduling transfers and/or reducing concurrency and
parallelism."  This module turns a fitted model into that advice:

- :class:`TunableAdvisor` — sweep candidate (C, P) pairs through a model to
  recommend tunables for a dataset under current load (the paper's [4]
  HARP-style decision, but with zero probing);
- :class:`SourceSelector` — rank replica sources by predicted rate (the
  scheduling_advisor example's logic as a library API);
- :class:`AdmissionPlanner` — order a backlog of transfer requests across
  edges, greedily avoiding predicted self-contention at shared endpoints.

All advice is *model-driven*: nothing here talks to the simulator, so the
same code would run against models trained on real logs.

These are the scalar reference implementations: one candidate, one
prediction.  The production path is :mod:`repro.serve.advise`, which runs
the same sweep as a single :class:`~repro.serve.BatchOnlinePredictor`
call (all candidates in one feature matrix), clips by the Eq. 1 bound,
tags every answer with its :class:`~repro.serve.ModelTier`, and upgrades
the planner into a fleet scheduler over a live
:class:`~repro.serve.ActiveSet`.  The scalar paths below stay because the
batch ones are verified bit-identical against them (the ``repro-tools
bench`` advise parity gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.online import ActiveTransferView, OnlineFeatureEstimator, OnlinePredictor
from repro.core.pipeline import EdgeModelResult, GlobalModelResult
from repro.sim.gridftp import TransferRequest

__all__ = [
    "TunableRecommendation",
    "TunableAdvisor",
    "SourceSelector",
    "PlannedTransfer",
    "AdmissionPlanner",
]

# Candidate (concurrency, parallelism) grid; the Globus-practical range.
DEFAULT_TUNABLE_GRID: tuple[tuple[int, int], ...] = (
    (1, 1), (1, 4), (2, 2), (2, 4), (2, 8),
    (4, 2), (4, 4), (4, 8), (8, 4), (8, 8), (16, 4),
)


@dataclass(frozen=True)
class TunableRecommendation:
    """Outcome of a tunable sweep.

    Attributes
    ----------
    concurrency, parallelism:
        The recommended pair.
    predicted_rate:
        Model-predicted rate at the recommendation, bytes/s.
    alternatives:
        (C, P, predicted rate) for every candidate evaluated, best first.
    """

    concurrency: int
    parallelism: int
    predicted_rate: float
    alternatives: tuple[tuple[int, int, float], ...]

    @property
    def degenerate(self) -> bool:
        """True when any candidate predicted a non-positive or non-finite
        rate — the sweep carries no usable preference signal."""
        return any(
            not np.isfinite(alt[2]) or alt[2] <= 0.0
            for alt in self.alternatives
        )

    @property
    def gain_over_worst(self) -> float:
        """Predicted speedup of best over worst candidate.

        A degenerate sweep (some candidate at rate <= 0, e.g. a model
        predicting zero everywhere) reports 1.0 — "no gain" — rather than
        the ``inf`` a naive best/worst ratio would produce; an all-zero
        sweep must read as "nothing to act on", not "infinitely better".
        """
        if self.degenerate:
            return 1.0
        worst = self.alternatives[-1][2]
        return self.predicted_rate / worst

    @property
    def confident(self) -> bool:
        """Whether the model actually differentiates the candidates.

        Models trained on logs where C and P never varied (the paper's
        low-variance elimination) predict near-identical rates across the
        grid; acting on such a "recommendation" would be noise-chasing.
        Degenerate sweeps are never confident.
        """
        return not self.degenerate and self.gain_over_worst > 1.1


class TunableAdvisor:
    """Recommends (C, P) for a dataset on one edge under current load.

    Notes
    -----
    Models trained on logs where C and P were eliminated for low variance
    cannot see the tunables directly; the sweep still differentiates
    candidates through ``min(C, Nf)``-driven stream/instance features.  For
    a model that kept C/P, the sweep uses them directly.
    """

    def __init__(
        self,
        result: EdgeModelResult | GlobalModelResult,
        estimator: OnlineFeatureEstimator,
        grid: tuple[tuple[int, int], ...] = DEFAULT_TUNABLE_GRID,
        extra_columns: dict[str, float] | None = None,
    ) -> None:
        if not grid:
            raise ValueError("empty tunable grid")
        for c, p in grid:
            if c < 1 or p < 1:
                raise ValueError(f"bad grid entry ({c}, {p})")
        self._predictor = OnlinePredictor(
            result, estimator, extra_columns=extra_columns or {}
        )
        self.grid = grid

    def recommend(
        self, request: TransferRequest, now: float = 0.0
    ) -> TunableRecommendation:
        """Sweep the grid for ``request`` (its own C/P are ignored)."""
        scored = []
        for c, p in self.grid:
            candidate = replace(request, concurrency=c, parallelism=p)
            rate = self._predictor.predict(candidate, now)
            scored.append((c, p, rate))
        scored.sort(key=lambda t: -t[2])
        best = scored[0]
        return TunableRecommendation(
            concurrency=best[0],
            parallelism=best[1],
            predicted_rate=best[2],
            alternatives=tuple(scored),
        )


class SourceSelector:
    """Ranks candidate sources of a replicated dataset by predicted rate.

    Requires a *global* model (per-edge models cannot score unseen pairs).
    """

    def __init__(
        self,
        result: GlobalModelResult,
        estimator: OnlineFeatureEstimator,
        capability_lookup,
        include_rtt_distance=None,
    ) -> None:
        """``capability_lookup(endpoint) -> (ro_max, ri_max)``;
        ``include_rtt_distance(src, dst) -> km`` if the model was trained
        with the RTT extension."""
        self.result = result
        self.estimator = estimator
        self.capability_lookup = capability_lookup
        self.include_rtt_distance = include_rtt_distance
        needs_rtt = "distance_km" in result.feature_names
        if needs_rtt and include_rtt_distance is None:
            raise ValueError(
                "model includes distance_km; pass include_rtt_distance"
            )

    def rank(
        self,
        sources: list[str],
        dst: str,
        template: TransferRequest,
        now: float = 0.0,
    ) -> list[tuple[str, float]]:
        """(source, predicted rate) pairs, best first."""
        if not sources:
            raise ValueError("no candidate sources")
        from repro.serve.active_set import ActiveSet
        from repro.serve.batch import BatchOnlinePredictor

        # One shared population for the whole ranking: previously a fresh
        # OnlinePredictor — and with it a fresh copy of the active set and
        # its endpoint indexes — was built per candidate source.
        active = ActiveSet.from_views(self.estimator.active)
        out = []
        for src in sources:
            if src == dst:
                continue
            req = replace(template, src=src, dst=dst)
            ro, _ = self.capability_lookup(src)
            _, ri = self.capability_lookup(dst)
            extra = {"ROmax_src": ro, "RImax_dst": ri}
            if self.include_rtt_distance is not None and (
                "distance_km" in self.result.feature_names
            ):
                extra["distance_km"] = self.include_rtt_distance(src, dst)
            engine = BatchOnlinePredictor(
                self.result, active, extra_columns=extra
            )
            out.append((src, engine.predict(req, now)))
        if not out:
            raise ValueError("every candidate source equals the destination")
        out.sort(key=lambda t: -t[1])
        return out


@dataclass(frozen=True)
class PlannedTransfer:
    """One admission-plan entry."""

    request: TransferRequest
    start_at: float
    predicted_rate: float
    predicted_end: float


class AdmissionPlanner:
    """Greedy backlog scheduler that avoids predicted self-contention.

    Given a backlog of requests and per-edge fitted models, repeatedly
    admits the request with the highest predicted rate *under the load the
    plan has already created*, capping simultaneous transfers per endpoint.
    This is the paper's "aggregate performance can be improved by
    scheduling transfers" implication, executed with the paper's own
    models.
    """

    def __init__(
        self,
        models: dict[tuple[str, str], EdgeModelResult],
        max_active_per_endpoint: int = 4,
    ) -> None:
        if max_active_per_endpoint < 1:
            raise ValueError("max_active_per_endpoint must be >= 1")
        self.models = dict(models)
        self.max_active = max_active_per_endpoint

    def plan(
        self, backlog: list[TransferRequest], now: float = 0.0
    ) -> list[PlannedTransfer]:
        """Produce an admission order; requests on unmodeled edges raise.

        (:class:`repro.serve.advise.FleetScheduler` is the production
        version: it degrades through a fallback chain instead of raising
        and scores all eligible candidates in one batch call.)
        """
        for req in backlog:
            if (req.src, req.dst) not in self.models:
                raise KeyError(f"no model for edge {(req.src, req.dst)}")
        from repro.serve.active_set import ActiveSet
        from repro.serve.batch import BatchOnlinePredictor

        pending = list(backlog)
        # One engine per distinct edge, all sharing one incrementally
        # maintained population.  Previously a fresh OnlinePredictor — and
        # a fresh copy of the whole active view — was constructed per
        # candidate per admission round, quadratic in the backlog; now
        # allocations are O(backlog) per plan() call.
        active = ActiveSet()
        engines = {
            edge: BatchOnlinePredictor(self.models[edge], active)
            for edge in {(r.src, r.dst) for r in pending}
        }
        in_flight: dict[int, ActiveTransferView] = {}
        planned: list[PlannedTransfer] = []
        clock = now

        def endpoint_load(ep: str) -> int:
            return sum(1 for a in in_flight.values() if ep in (a.src, a.dst))

        while pending:
            # Drop finished planned transfers from the active view.
            for tid in [
                t for t, a in in_flight.items() if a.expected_end <= clock
            ]:
                active.complete(tid)
                del in_flight[tid]

            candidates = []
            for i, req in enumerate(pending):
                if (
                    endpoint_load(req.src) >= self.max_active
                    or endpoint_load(req.dst) >= self.max_active
                ):
                    continue
                engine = engines[(req.src, req.dst)]
                candidates.append((engine.predict(req, clock), i))
            if not candidates:
                # Everything is blocked: advance to the next completion.
                next_end = min(a.expected_end for a in in_flight.values())
                clock = max(next_end, clock + 1e-6)
                continue

            candidates.sort(key=lambda t: -t[0])
            rate, idx = candidates[0]
            req = pending.pop(idx)
            duration = req.total_bytes / max(rate, 1.0)
            planned.append(
                PlannedTransfer(
                    request=req,
                    start_at=clock,
                    predicted_rate=rate,
                    predicted_end=clock + duration,
                )
            )
            view = ActiveTransferView(
                src=req.src,
                dst=req.dst,
                rate=rate,
                started_at=clock,
                expected_end=clock + duration,
                concurrency=req.concurrency,
                parallelism=req.parallelism,
                n_files=req.n_files,
            )
            tid = len(planned) - 1
            active.add(tid, view)
            in_flight[tid] = view
        return planned
