"""Explanation grids: the bubble plots of Figures 9 and 12.

Both figures show, for each of 30 edges (rows) and each feature (columns),
the *relative* significance of that feature in the edge's model — scaled so
each edge's largest bubble has the same size ("we scaled the coefficients
by dividing each coefficient into the maximum value of its edge").
Eliminated features (low variance — always C and P) are marked with a red
cross; here they are NaN cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import EdgeModelResult

__all__ = ["SignificanceGrid", "significance_grid"]


@dataclass
class SignificanceGrid:
    """Edge x feature relative-significance matrix.

    Attributes
    ----------
    edges:
        Row labels: (src, dst) per row.
    feature_names:
        Column labels.
    values:
        (n_edges, n_features); each row scaled to max 1.0; NaN marks an
        eliminated feature.
    model_kind:
        "linear" (Figure 9) or "gbt" (Figure 12).
    """

    edges: list[tuple[str, str]]
    feature_names: tuple[str, ...]
    values: np.ndarray
    model_kind: str

    def eliminated_everywhere(self) -> list[str]:
        """Features eliminated on every edge (the paper's C and P)."""
        all_nan = np.all(np.isnan(self.values), axis=0)
        return [n for n, e in zip(self.feature_names, all_nan) if e]

    def mean_significance(self) -> dict[str, float]:
        """Column means ignoring NaN — a cross-edge importance ranking.

        All-NaN columns (features eliminated everywhere) score 0.0.
        """
        finite = np.isfinite(self.values)
        counts = finite.sum(axis=0)
        sums = np.where(finite, self.values, 0.0).sum(axis=0)
        means = np.divide(
            sums, counts, out=np.zeros_like(sums), where=counts > 0
        )
        return {n: float(v) for n, v in zip(self.feature_names, means)}

    def render(self, max_name_len: int = 18) -> str:
        """ASCII rendering: one row per edge, bubble size as 0-9 digits."""
        lines = []
        header = " " * max_name_len + " ".join(f"{n:>7}" for n in self.feature_names)
        lines.append(header)
        for (src, dst), row in zip(self.edges, self.values):
            label = f"{src}->{dst}"[:max_name_len].ljust(max_name_len)
            cells = []
            for v in row:
                if np.isnan(v):
                    cells.append(f"{'x':>7}")
                else:
                    cells.append(f"{int(round(v * 9)):>7}")
            lines.append(label + " ".join(cells))
        return "\n".join(lines)


def significance_grid(results: list[EdgeModelResult]) -> SignificanceGrid:
    """Assemble Figure 9/12 from per-edge explanation-model results.

    All results must come from the same model kind and feature set
    (``fit_all_edge_models(..., explanation=True)``).
    """
    if not results:
        raise ValueError("no results")
    kinds = {r.model_kind for r in results}
    if len(kinds) != 1:
        raise ValueError(f"mixed model kinds {kinds}")
    name_sets = {r.feature_names for r in results}
    if len(name_sets) != 1:
        raise ValueError("results have differing feature sets")
    names = results[0].feature_names

    values = np.full((len(results), len(names)), np.nan)
    for i, r in enumerate(results):
        sig = r.significance.copy()
        finite = np.isfinite(sig)
        if finite.any() and np.nanmax(sig) > 0:
            sig[finite] = sig[finite] / np.nanmax(sig)
        values[i] = sig
    return SignificanceGrid(
        edges=[r.edge for r in results],
        feature_names=names,
        values=values,
        model_kind=results[0].model_kind,
    )
