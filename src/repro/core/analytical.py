"""The §3 analytical model and §4.3.2 unknown-load mitigation.

Eq. 1: ``Rmax <= min(DRmax, MMmax, DWmax)`` — an end-to-end transfer cannot
beat its slowest subsystem.  §3.2 extends the model to endpoints we cannot
probe by estimating DRmax/DWmax from the log (max observed rate as
source/destination) and classifies each edge's binding subsystem.

§4.3.2's threshold filter: because non-Globus load is invisible, "we
address the limitation of missing information on non-Globus load by
considering in our analyses only transfers that achieve a high fraction of
peak" — rate >= T * Rmax(edge), T = 0.5 by default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.logs.store import LogStore

__all__ = [
    "max_achievable_rate",
    "classify_bottleneck",
    "relative_external_load",
    "estimate_endpoint_maxima",
    "threshold_mask",
    "clip_rates_to_bound",
    "EndpointMaxima",
]


def max_achievable_rate(dr_max: float, mm_max: float, dw_max: float) -> float:
    """Eq. 1 upper bound on end-to-end rate."""
    for name, v in (("DRmax", dr_max), ("MMmax", mm_max), ("DWmax", dw_max)):
        if v <= 0:
            raise ValueError(f"{name} must be > 0, got {v}")
    return min(dr_max, mm_max, dw_max)


def classify_bottleneck(dr_max: float, mm_max: float, dw_max: float) -> str:
    """Which subsystem binds Eq. 1 (§3.2 classifies 11 disk-read-, 14
    network-, and 20 disk-write-limited edges)."""
    bound = max_achievable_rate(dr_max, mm_max, dw_max)
    if bound == dw_max:
        return "disk_write"
    if bound == dr_max:
        return "disk_read"
    return "network"


def relative_external_load(
    rate: np.ndarray, k_sout: np.ndarray, k_din: np.ndarray
) -> np.ndarray:
    """The §3.2 relative external load.

    Per transfer: ``max(Ksout/(R+Ksout), Kdin/(R+Kdin))`` — the greater of
    the relative endpoint external loads at source and destination.
    """
    rate = np.asarray(rate, dtype=np.float64)
    k_sout = np.asarray(k_sout, dtype=np.float64)
    k_din = np.asarray(k_din, dtype=np.float64)
    if not (rate.shape == k_sout.shape == k_din.shape):
        raise ValueError("shape mismatch")
    if np.any(rate <= 0):
        raise ValueError("rates must be > 0")
    if np.any(k_sout < 0) or np.any(k_din < 0):
        raise ValueError("contending rates must be >= 0")
    rel_s = k_sout / (rate + k_sout)
    rel_d = k_din / (rate + k_din)
    return np.maximum(rel_s, rel_d)


@dataclass(frozen=True)
class EndpointMaxima:
    """Log-estimated endpoint capabilities (§3.2).

    ``dr_max`` is the maximum rate observed with the endpoint as source
    (a lower bound on true disk-read capability) and ``dw_max`` the maximum
    with it as destination.
    """

    endpoint: str
    dr_max: float
    dw_max: float


def estimate_endpoint_maxima(store: LogStore) -> dict[str, EndpointMaxima]:
    """Per-endpoint DRmax/DWmax estimates from historical rates.

    Endpoints that only ever appear on one side get 0.0 for the unseen
    direction (no information, not "zero capability" — callers should treat
    0.0 as missing).
    """
    if len(store) == 0:
        raise ValueError("empty store")
    rates = store.rates
    src = store.column("src")
    dst = store.column("dst")
    out: dict[str, EndpointMaxima] = {}
    for ep in sorted(set(src) | set(dst)):
        as_src = rates[src == ep]
        as_dst = rates[dst == ep]
        out[str(ep)] = EndpointMaxima(
            endpoint=str(ep),
            dr_max=float(as_src.max()) if as_src.size else 0.0,
            dw_max=float(as_dst.max()) if as_dst.size else 0.0,
        )
    return out


def clip_rates_to_bound(
    rates: np.ndarray, bound: float | None
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the Eq. 1 cap to model predictions.

    A learned model extrapolating outside its training regime can predict
    rates no physical subsystem could sustain; Eq. 1 says the end-to-end
    rate cannot beat ``min(DRmax, MMmax, DWmax)``.  Returns
    ``(clipped, mask)`` where ``mask`` marks the entries that exceeded the
    bound.  ``bound=None`` (endpoint capabilities unknown) leaves the
    rates untouched with an all-False mask.
    """
    rates = np.asarray(rates, dtype=np.float64)
    if bound is None:
        return rates.copy(), np.zeros(rates.shape, dtype=bool)
    if bound <= 0 or not np.isfinite(bound):
        raise ValueError(f"bound must be finite and > 0, got {bound}")
    mask = rates > bound
    return np.where(mask, bound, rates), mask


def threshold_mask(store: LogStore, threshold: float = 0.5) -> np.ndarray:
    """Boolean mask of transfers with rate >= threshold * Rmax(their edge).

    This is the §4.3.2 unknown-load filter.  Rmax is computed per edge from
    the given store, so apply it to the *full* log before any other
    filtering.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    if len(store) == 0:
        return np.zeros(0, dtype=bool)
    rates = store.rates
    src = store.column("src")
    dst = store.column("dst")
    # Group max by edge via lexicographic sort.
    keys = np.char.add(np.char.add(src, "\x1f"), dst)
    edge_max: dict[str, float] = {}
    for k, r in zip(keys, rates):
        if r > edge_max.get(k, -np.inf):
            edge_max[k] = r
    rmax = np.array([edge_max[k] for k in keys])
    return rates >= threshold * rmax
