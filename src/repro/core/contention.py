"""Overlap-weighted contention aggregation (Eq. 2 and §4.3.1).

For a transfer ``k`` and a set of competing transfers ``A``, the paper
computes features of the form

    F(k) = sum over i in A of  O(i, k) / (Te_k - Ts_k) * w_i,

where ``O(i, k) = max(0, min(Te_i, Te_k) - max(Ts_i, Ts_k))`` is the time
two transfers overlap, and ``w_i`` is the competing transfer's rate (for
K features), its GridFTP instance count ``min(C_i, F_i)`` (for G), or its
stream count ``min(C_i, F_i) * P_i`` (for S).

Computing this naively is O(n²) per endpoint.  :class:`IntervalOverlapIndex`
answers weighted-overlap queries in O(log n) each using four prefix-sum
identities over intervals sorted by start and by end:

    sum_i w_i * min(Te_i, b)  over {Ts_i < b, Te_i > a}
        = sum_{Te<=b} w*Te + b * (W_{Ts<b} - W_{Te<=b}) - sum_{Te<=a} w*Te
    sum_i w_i * max(Ts_i, a)  over the same set
        = a * (W_{Ts<=a} - W_{Te<=a}) + sum_{a<Ts<b} w*Ts

(using that Te_i <= t implies Ts_i < t, and Ts_i >= t implies Te_i > t).
The weighted overlap sum is the difference of the two terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.logs.store import LogStore

__all__ = ["IntervalOverlapIndex", "ActiveOverlapIndex", "ContentionComputer"]


class IntervalOverlapIndex:
    """Prefix-sum index over weighted time intervals.

    Parameters
    ----------
    ts, te:
        Interval starts and ends (te > ts elementwise).
    weights:
        Per-interval weights (the w_i above).
    """

    def __init__(self, ts: np.ndarray, te: np.ndarray, weights: np.ndarray) -> None:
        ts = np.asarray(ts, dtype=np.float64).ravel()
        te = np.asarray(te, dtype=np.float64).ravel()
        w = np.asarray(weights, dtype=np.float64).ravel()
        if not (ts.shape == te.shape == w.shape):
            raise ValueError("ts, te, weights must have equal shapes")
        if np.any(te <= ts):
            raise ValueError("intervals must have te > ts")
        self.n = ts.size

        order_s = np.argsort(ts, kind="stable")
        self._ts_sorted = ts[order_s]
        self._w_by_ts = np.concatenate([[0.0], np.cumsum(w[order_s])])
        self._wts_by_ts = np.concatenate([[0.0], np.cumsum(w[order_s] * ts[order_s])])

        order_e = np.argsort(te, kind="stable")
        self._te_sorted = te[order_e]
        self._w_by_te = np.concatenate([[0.0], np.cumsum(w[order_e])])
        self._wte_by_te = np.concatenate([[0.0], np.cumsum(w[order_e] * te[order_e])])

    def overlap_sum(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vector of ``sum_i w_i * O(i, [a, b])`` for query intervals.

        Self-exclusion is the caller's job: if the query interval is itself
        a member with weight ``w_k``, subtract ``w_k * (b - a)``.
        """
        a = np.asarray(a, dtype=np.float64).ravel()
        b = np.asarray(b, dtype=np.float64).ravel()
        if a.shape != b.shape:
            raise ValueError("a and b must have equal shapes")
        if np.any(b <= a):
            raise ValueError("queries must have b > a")
        if self.n == 0:
            return np.zeros_like(a)

        # Counts/sums via searchsorted against the sorted arrays.
        # {Te <= t}: side='right' on te_sorted.
        idx_te_a = np.searchsorted(self._te_sorted, a, side="right")
        idx_te_b = np.searchsorted(self._te_sorted, b, side="right")
        # {Ts < t}: side='left' on ts_sorted; {Ts <= t}: side='right'.
        idx_ts_b = np.searchsorted(self._ts_sorted, b, side="left")
        idx_ts_a_le = np.searchsorted(self._ts_sorted, a, side="right")

        w_te_le_a = self._w_by_te[idx_te_a]
        w_te_le_b = self._w_by_te[idx_te_b]
        wte_le_a = self._wte_by_te[idx_te_a]
        wte_le_b = self._wte_by_te[idx_te_b]
        w_ts_lt_b = self._w_by_ts[idx_ts_b]
        w_ts_le_a = self._w_by_ts[idx_ts_a_le]
        wts_lt_b = self._wts_by_ts[idx_ts_b]
        wts_le_a = self._wts_by_ts[idx_ts_a_le]

        term_min = wte_le_b + b * (w_ts_lt_b - w_te_le_b) - wte_le_a
        term_max = a * (w_ts_le_a - w_te_le_a) + (wts_lt_b - wts_le_a)
        out = term_min - term_max
        # The prefix sums feeding the identity can be ~1e14 while the true
        # answer is exactly zero; double-precision cancellation then leaves
        # residue of either sign.  Clamp anything within 1e-12 of the
        # intermediate magnitude to zero (overlaps that small are
        # physically meaningless).
        noise = 1e-12 * (
            np.abs(wte_le_b)
            + np.abs(wte_le_a)
            + np.abs(b) * (w_ts_lt_b + w_te_le_b)
            + np.abs(a) * (w_ts_le_a + w_te_le_a)
            + np.abs(wts_lt_b)
            + np.abs(wts_le_a)
        )
        out[np.abs(out) <= noise] = 0.0
        np.maximum(out, 0.0, out=out)
        return out


class ActiveOverlapIndex:
    """Prefix-sum index over weighted intervals that have *already started*.

    The online-serving case of :class:`IntervalOverlapIndex`: every indexed
    interval is known to start at or before any query's left edge ``a`` (the
    in-flight transfer population at time ``a``), so only the end times
    matter and the overlap of interval ``i`` with a query ``[a, b]`` is
    ``max(0, min(te_i, b) - a)``.  Supports ``te = inf`` ("runs forever",
    the conservative choice when a completion estimate is unknown): such
    intervals always overlap the full query window.

    Queries are vectorized two ways: one call answers the weighted-overlap
    sum for a whole batch of query windows in O(q log n), and ``weights``
    may be a 2-D ``(n, k)`` column stack so ``k`` different weightings of
    the *same* intervals (e.g. a transfer population weighted by rate and
    by stream count) share a single pair of binary searches per query.

    Parameters
    ----------
    te:
        Interval end times; may contain ``inf``.
    weights:
        Per-interval weights (rates, stream counts, instance counts, ...),
        shape ``(n,)`` for one weighting or ``(n, k)`` for ``k`` of them.
    """

    def __init__(self, te: np.ndarray, weights: np.ndarray) -> None:
        te = np.asarray(te, dtype=np.float64).ravel()
        w = np.asarray(weights, dtype=np.float64)
        self._multi = w.ndim == 2
        if not self._multi:
            w = w.reshape(-1, 1)
        if w.ndim != 2 or w.shape[0] != te.size:
            raise ValueError("weights must have shape (n,) or (n, k)")
        self.n = te.size
        finite = np.isfinite(te)
        self._w_inf = w[~finite].sum(axis=0)
        te_f, w_f = te[finite], w[finite]
        order = np.argsort(te_f, kind="stable")
        self._te_sorted = te_f[order]
        zero = np.zeros((1, w.shape[1]))
        self._w_cum = np.concatenate([zero, np.cumsum(w_f[order], axis=0)])
        self._wte_cum = np.concatenate(
            [zero, np.cumsum(w_f[order] * te_f[order][:, None], axis=0)]
        )

    def overlap_sum(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``sum_i w_i * max(0, min(te_i, b) - a)`` per query.

        ``a`` and ``b`` broadcast against each other; requires ``b > a``.
        The caller guarantees every indexed interval starts at or before
        ``a`` (true by construction for an active-transfer population
        queried at the current time).  Returns shape ``(q,)`` for 1-D
        weights, ``(q, k)`` for ``(n, k)`` weights.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if np.any(b <= a):
            raise ValueError("queries must have b > a")
        k = self._w_cum.shape[1]
        shape = np.broadcast_shapes(a.shape, b.shape)
        if self.n == 0:
            out = np.zeros(shape + (k,))
            return out if self._multi else out[..., 0]
        # Ends in (a, b] contribute w*(te - a); ends > b contribute w*(b - a).
        idx_a = np.searchsorted(self._te_sorted, a, side="right")
        idx_b = np.searchsorted(self._te_sorted, b, side="right")
        span = (b - a)[..., None]
        mid = (self._wte_cum[idx_b] - self._wte_cum[idx_a]) - a[..., None] * (
            self._w_cum[idx_b] - self._w_cum[idx_a]
        )
        tail = span * (self._w_cum[-1] - self._w_cum[idx_b])
        out = mid + tail + self._w_inf * span
        np.maximum(out, 0.0, out=out)
        return out if self._multi else out[..., 0]


@dataclass
class _EndpointIndexes:
    """Overlap indexes for one endpoint's transfer activity."""

    out_rate: IntervalOverlapIndex      # weights = R_i, transfers sourced here
    in_rate: IntervalOverlapIndex       # weights = R_i, transfers arriving here
    out_streams: IntervalOverlapIndex   # weights = min(C,F)*P, sourced here
    in_streams: IntervalOverlapIndex    # weights = min(C,F)*P, arriving here
    touch_instances: IntervalOverlapIndex  # weights = min(C,F), either side


class ContentionComputer:
    """Computes the ten §4.3.1 contention features for every transfer.

    Build once from a full log (all transfers the service knows about),
    then call :meth:`compute` for the transfers of interest — the paper
    computes competing load from the *entire* log even when modeling a
    single edge.
    """

    def __init__(self, store: LogStore) -> None:
        if len(store) == 0:
            raise ValueError("cannot build contention indexes from empty log")
        self._store = store
        data = store.raw()
        self._ts = data["ts"]
        self._te = data["te"]
        self._src = data["src"]
        self._dst = data["dst"]
        self._rate = store.rates
        inst = np.minimum(data["c"], data["nf"]).astype(np.float64)
        self._instances = inst
        self._streams = inst * data["p"]
        self._indexes: dict[str, _EndpointIndexes] = {}
        for ep in set(self._src) | set(self._dst):
            self._indexes[str(ep)] = self._build_endpoint(str(ep))

    def _build_endpoint(self, ep: str) -> _EndpointIndexes:
        is_out = self._src == ep
        is_in = self._dst == ep
        touches = is_out | is_in

        def idx(mask: np.ndarray, w: np.ndarray) -> IntervalOverlapIndex:
            return IntervalOverlapIndex(self._ts[mask], self._te[mask], w[mask])

        return _EndpointIndexes(
            out_rate=idx(is_out, self._rate),
            in_rate=idx(is_in, self._rate),
            out_streams=idx(is_out, self._streams),
            in_streams=idx(is_in, self._streams),
            touch_instances=idx(touches, self._instances),
        )

    def compute(self, subset: np.ndarray | None = None) -> dict[str, np.ndarray]:
        """Contention features for transfers at positions ``subset`` of the
        full store (all transfers when None).

        Returns a dict with keys ``K_sout, K_sin, K_dout, K_din, S_sout,
        S_sin, S_dout, S_din, G_src, G_dst`` mapping to per-transfer arrays.
        Each value already includes the 1/(Te_k - Ts_k) scaling of Eq. 2 and
        excludes the transfer's own contribution.
        """
        if subset is None:
            subset = np.arange(len(self._store))
        subset = np.asarray(subset)
        n = subset.size
        out = {
            name: np.zeros(n)
            for name in (
                "K_sout", "K_sin", "K_dout", "K_din",
                "S_sout", "S_sin", "S_dout", "S_din",
                "G_src", "G_dst",
            )
        }
        ts = self._ts[subset]
        te = self._te[subset]
        dur = te - ts
        rate = self._rate[subset]
        streams = self._streams[subset]
        instances = self._instances[subset]
        src = self._src[subset]
        dst = self._dst[subset]

        # Group queries per endpoint so each index is queried in bulk.
        for ep, idxs in self._indexes.items():
            at_src = np.nonzero(src == ep)[0]
            at_dst = np.nonzero(dst == ep)[0]
            if at_src.size:
                a, b, d = ts[at_src], te[at_src], dur[at_src]
                # Outgoing sets at the source include k itself: subtract
                # the self term w_k * duration before scaling.
                out["K_sout"][at_src] = (
                    idxs.out_rate.overlap_sum(a, b) - rate[at_src] * d
                ) / d
                out["S_sout"][at_src] = (
                    idxs.out_streams.overlap_sum(a, b) - streams[at_src] * d
                ) / d
                out["K_sin"][at_src] = idxs.in_rate.overlap_sum(a, b) / d
                out["S_sin"][at_src] = idxs.in_streams.overlap_sum(a, b) / d
                out["G_src"][at_src] = (
                    idxs.touch_instances.overlap_sum(a, b) - instances[at_src] * d
                ) / d
            if at_dst.size:
                a, b, d = ts[at_dst], te[at_dst], dur[at_dst]
                out["K_din"][at_dst] = (
                    idxs.in_rate.overlap_sum(a, b) - rate[at_dst] * d
                ) / d
                out["S_din"][at_dst] = (
                    idxs.in_streams.overlap_sum(a, b) - streams[at_dst] * d
                ) / d
                out["K_dout"][at_dst] = idxs.out_rate.overlap_sum(a, b) / d
                out["S_dout"][at_dst] = idxs.out_streams.overlap_sum(a, b) / d
                out["G_dst"][at_dst] = (
                    idxs.touch_instances.overlap_sum(a, b) - instances[at_dst] * d
                ) / d

        # Numerical floor: the self-subtraction above cancels two numbers of
        # magnitude ~w_k * duration, which can leave residue of either sign
        # around zero.  Clamp anything negligible relative to the transfer's
        # own weight to exactly zero.
        self_weight = {
            "K_sout": rate, "K_din": rate,
            "S_sout": streams, "S_din": streams,
            "G_src": instances, "G_dst": instances,
        }
        for key, v in out.items():
            np.maximum(v, 0.0, out=v)
            if key in self_weight:
                v[v < 1e-9 * np.maximum(self_weight[key], 1.0)] = 0.0
        return out
