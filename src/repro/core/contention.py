"""Overlap-weighted contention aggregation (Eq. 2 and §4.3.1).

For a transfer ``k`` and a set of competing transfers ``A``, the paper
computes features of the form

    F(k) = sum over i in A of  O(i, k) / (Te_k - Ts_k) * w_i,

where ``O(i, k) = max(0, min(Te_i, Te_k) - max(Ts_i, Ts_k))`` is the time
two transfers overlap, and ``w_i`` is the competing transfer's rate (for
K features), its GridFTP instance count ``min(C_i, F_i)`` (for G), or its
stream count ``min(C_i, F_i) * P_i`` (for S).

Computing this naively is O(n²) per endpoint.  :class:`IntervalOverlapIndex`
answers weighted-overlap queries in O(log n) each using four prefix-sum
identities over intervals sorted by start and by end:

    sum_i w_i * min(Te_i, b)  over {Ts_i < b, Te_i > a}
        = sum_{Te<=b} w*Te + b * (W_{Ts<b} - W_{Te<=b}) - sum_{Te<=a} w*Te
    sum_i w_i * max(Ts_i, a)  over the same set
        = a * (W_{Ts<=a} - W_{Te<=a}) + sum_{a<Ts<b} w*Ts

(using that Te_i <= t implies Ts_i < t, and Ts_i >= t implies Te_i > t).
The weighted overlap sum is the difference of the two terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.logs.store import LogStore

__all__ = ["IntervalOverlapIndex", "ActiveOverlapIndex", "ContentionComputer"]


class IntervalOverlapIndex:
    """Prefix-sum index over weighted time intervals.

    ``weights`` may be 1-D (one weighting) or an ``(n, k)`` column stack:
    ``k`` different weightings of the *same* intervals answered with a
    single set of four binary searches per query batch.  Zero-padding a
    column (a weighting that only applies to some member intervals) is
    exact: adding ``0.0`` terms leaves every partial sum bit-identical, so
    a padded column reproduces a separate index over the non-zero subset
    bit-for-bit.

    Parameters
    ----------
    ts, te:
        Interval starts and ends (te > ts elementwise).
    weights:
        Per-interval weights (the w_i above), shape ``(n,)`` or ``(n, k)``.
    """

    def __init__(
        self,
        ts: np.ndarray,
        te: np.ndarray,
        weights: np.ndarray,
        nonneg: bool | None = None,
    ) -> None:
        ts = np.asarray(ts, dtype=np.float64).ravel()
        te = np.asarray(te, dtype=np.float64).ravel()
        w = np.asarray(weights, dtype=np.float64)
        self._multi = w.ndim == 2
        if not self._multi:
            w = w.reshape(-1, 1)
        if w.ndim != 2 or w.shape[0] != ts.size or ts.shape != te.shape:
            raise ValueError("ts, te, weights must have matching first dims")
        if np.any(te <= ts):
            raise ValueError("intervals must have te > ts")
        self.n = ts.size
        k = w.shape[1]
        # Prefix tables live transposed, (k, n+1): each weighting's running
        # sum is then a contiguous row, so the four cumsums stream instead of
        # striding across columns and query gathers copy whole rows.
        wt = np.ascontiguousarray(w.T)

        def tables(t_sorted: np.ndarray, order: np.ndarray) -> tuple:
            ws = wt[:, order]
            w_cum = np.empty((k, self.n + 1))
            w_cum[:, 0] = 0.0
            np.cumsum(ws, axis=1, out=w_cum[:, 1:])
            ws *= t_sorted[None, :]
            wt_cum = np.empty((k, self.n + 1))
            wt_cum[:, 0] = 0.0
            np.cumsum(ws, axis=1, out=wt_cum[:, 1:])
            return w_cum, wt_cum

        order_s = np.argsort(ts, kind="stable")
        self._ts_sorted = ts[order_s]
        self._w_by_ts, self._wts_by_ts = tables(self._ts_sorted, order_s)

        order_e = np.argsort(te, kind="stable")
        self._te_sorted = te[order_e]
        self._w_by_te, self._wte_by_te = tables(self._te_sorted, order_e)

        # All-nonnegative data (true for every contention weighting: rates,
        # stream counts, instance counts, wall-clock times) lets the lean
        # eval path drop its |x| calls: every prefix sum is then >= 0, so
        # abs() is exactly the identity.  ``nonneg=True`` asserts the weight
        # property and skips the scan (the groupby builder knows it by
        # construction); None means "detect".
        self._nonneg = bool(
            (self.n == 0 or self._ts_sorted[0] >= 0.0)
            and ((wt >= 0.0).all() if nonneg is None else nonneg)
        )

    def _check_queries(
        self, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        a = np.asarray(a, dtype=np.float64).ravel()
        b = np.asarray(b, dtype=np.float64).ravel()
        if a.shape != b.shape:
            raise ValueError("a and b must have equal shapes")
        if np.any(b <= a):
            raise ValueError("queries must have b > a")
        return a, b

    def overlap_sum(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``sum_i w_i * O(i, [a, b])`` per query interval.

        Self-exclusion is the caller's job: if the query interval is itself
        a member with weight ``w_k``, subtract ``w_k * (b - a)``.  Returns
        shape ``(q,)`` for 1-D weights, ``(q, k)`` for ``(n, k)`` weights.
        """
        a, b = self._check_queries(a, b)
        if self.n == 0:
            out = np.zeros((a.size, self._w_by_ts.shape[0]))
            return out if self._multi else out[:, 0]

        # Counts/sums via searchsorted against the sorted arrays.
        # {Te <= t}: side='right' on te_sorted.
        idx_te_a = np.searchsorted(self._te_sorted, a, side="right")
        idx_te_b = np.searchsorted(self._te_sorted, b, side="right")
        # {Ts < t}: side='left' on ts_sorted; {Ts <= t}: side='right'.
        idx_ts_b = np.searchsorted(self._ts_sorted, b, side="left")
        idx_ts_a_le = np.searchsorted(self._ts_sorted, a, side="right")
        out = self._eval(idx_te_a, idx_te_b, idx_ts_b, idx_ts_a_le, a, b)
        return out.T if self._multi else out[0]

    def overlap_sum_fast(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """:meth:`overlap_sum` with sorted-query binary searches.

        ``np.searchsorted`` pays a branch misprediction per bisection step
        when consecutive queries land in unrelated parts of the array;
        pre-sorting the queries makes each search several times faster, and
        for batch queries the argsort + scatter overhead is small.  The
        search results are the same integers either way, so the output is
        bit-identical to :meth:`overlap_sum` (the groupby contention engine
        relies on this for its parity fingerprint).
        """
        a, b = self._check_queries(a, b)
        if self.n == 0:
            out = np.zeros((a.size, self._w_by_ts.shape[0]))
            return out if self._multi else out[:, 0]

        order_a = np.argsort(a)
        order_b = np.argsort(b)
        a_sorted = a[order_a]
        b_sorted = b[order_b]
        idx_te_a = np.empty(a.size, dtype=np.intp)
        idx_te_a[order_a] = np.searchsorted(self._te_sorted, a_sorted, side="right")
        idx_ts_a_le = np.empty(a.size, dtype=np.intp)
        idx_ts_a_le[order_a] = np.searchsorted(self._ts_sorted, a_sorted, side="right")
        idx_te_b = np.empty(b.size, dtype=np.intp)
        idx_te_b[order_b] = np.searchsorted(self._te_sorted, b_sorted, side="right")
        idx_ts_b = np.empty(b.size, dtype=np.intp)
        idx_ts_b[order_b] = np.searchsorted(self._ts_sorted, b_sorted, side="left")
        nonneg = self._nonneg and bool(a_sorted.size == 0 or a_sorted[0] >= 0.0)
        out = self._eval_lean(
            idx_te_a, idx_te_b, idx_ts_b, idx_ts_a_le, a, b, nonneg
        )
        return out.T if self._multi else out[0]

    def _eval(
        self,
        idx_te_a: np.ndarray,
        idx_te_b: np.ndarray,
        idx_ts_b: np.ndarray,
        idx_ts_a_le: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
    ) -> np.ndarray:
        """Reference evaluation of the prefix-sum identity, shape (k, q).

        This is the pre-optimisation arithmetic, kept verbatim (modulo the
        transposed table layout) as the baseline :meth:`overlap_sum` body;
        :meth:`_eval_lean` is the allocation-free variant and must stay
        bit-identical to it.
        """
        w_te_le_a = self._w_by_te[:, idx_te_a]
        w_te_le_b = self._w_by_te[:, idx_te_b]
        wte_le_a = self._wte_by_te[:, idx_te_a]
        wte_le_b = self._wte_by_te[:, idx_te_b]
        w_ts_lt_b = self._w_by_ts[:, idx_ts_b]
        w_ts_le_a = self._w_by_ts[:, idx_ts_a_le]
        wts_lt_b = self._wts_by_ts[:, idx_ts_b]
        wts_le_a = self._wts_by_ts[:, idx_ts_a_le]

        a_row = a[None, :]
        b_row = b[None, :]
        term_min = wte_le_b + b_row * (w_ts_lt_b - w_te_le_b) - wte_le_a
        term_max = a_row * (w_ts_le_a - w_te_le_a) + (wts_lt_b - wts_le_a)
        out = term_min - term_max
        # The prefix sums feeding the identity can be ~1e14 while the true
        # answer is exactly zero; double-precision cancellation then leaves
        # residue of either sign.  Clamp anything within 1e-12 of the
        # intermediate magnitude to zero (overlaps that small are
        # physically meaningless).
        noise = 1e-12 * (
            np.abs(wte_le_b)
            + np.abs(wte_le_a)
            + np.abs(b_row) * (w_ts_lt_b + w_te_le_b)
            + np.abs(a_row) * (w_ts_le_a + w_te_le_a)
            + np.abs(wts_lt_b)
            + np.abs(wts_le_a)
        )
        out[np.abs(out) <= noise] = 0.0
        np.maximum(out, 0.0, out=out)
        return out

    def _eval_lean(
        self,
        idx_te_a: np.ndarray,
        idx_te_b: np.ndarray,
        idx_ts_b: np.ndarray,
        idx_ts_a_le: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        nonneg: bool,
    ) -> np.ndarray:
        """Same identity and clamp as :meth:`_eval`, bit-for-bit, but with
        in-place updates on the gathered buffers (the gathers are the only
        allocations that survive) and, when ``nonneg`` is True, the |x|
        calls elided — on all-nonnegative data abs() is the identity, so
        the elision cannot change a single bit.
        """
        w_te_le_a = self._w_by_te[:, idx_te_a]
        w_te_le_b = self._w_by_te[:, idx_te_b]
        wte_le_a = self._wte_by_te[:, idx_te_a]
        wte_le_b = self._wte_by_te[:, idx_te_b]
        w_ts_lt_b = self._w_by_ts[:, idx_ts_b]
        w_ts_le_a = self._w_by_ts[:, idx_ts_a_le]
        wts_lt_b = self._wts_by_ts[:, idx_ts_b]
        wts_le_a = self._wts_by_ts[:, idx_ts_a_le]

        a_row = a[None, :]
        b_row = b[None, :]
        # Noise bound first (it reads every gather), then the gathers double
        # as scratch for the terms.  Sum order matches _eval exactly.
        if nonneg:
            noise = np.add(wte_le_b, wte_le_a)
            scratch = np.add(w_ts_lt_b, w_te_le_b)
            scratch *= b_row
            noise += scratch
            np.add(w_ts_le_a, w_te_le_a, out=scratch)
            scratch *= a_row
            noise += scratch
            noise += wts_lt_b
            noise += wts_le_a
            noise *= 1e-12
        else:
            noise = 1e-12 * (
                np.abs(wte_le_b)
                + np.abs(wte_le_a)
                + np.abs(b_row) * (w_ts_lt_b + w_te_le_b)
                + np.abs(a_row) * (w_ts_le_a + w_te_le_a)
                + np.abs(wts_lt_b)
                + np.abs(wts_le_a)
            )

        # term_min, built in w_ts_lt_b's buffer.
        np.subtract(w_ts_lt_b, w_te_le_b, out=w_ts_lt_b)
        w_ts_lt_b *= b_row
        w_ts_lt_b += wte_le_b
        w_ts_lt_b -= wte_le_a
        # term_max, built in w_ts_le_a's buffer.
        np.subtract(w_ts_le_a, w_te_le_a, out=w_ts_le_a)
        w_ts_le_a *= a_row
        np.subtract(wts_lt_b, wts_le_a, out=wts_lt_b)
        w_ts_le_a += wts_lt_b
        out = np.subtract(w_ts_lt_b, w_ts_le_a, out=w_ts_lt_b)
        out[np.abs(out) <= noise] = 0.0
        np.maximum(out, 0.0, out=out)
        return out


class ActiveOverlapIndex:
    """Prefix-sum index over weighted intervals that have *already started*.

    The online-serving case of :class:`IntervalOverlapIndex`: every indexed
    interval is known to start at or before any query's left edge ``a`` (the
    in-flight transfer population at time ``a``), so only the end times
    matter and the overlap of interval ``i`` with a query ``[a, b]`` is
    ``max(0, min(te_i, b) - a)``.  Supports ``te = inf`` ("runs forever",
    the conservative choice when a completion estimate is unknown): such
    intervals always overlap the full query window.

    Queries are vectorized two ways: one call answers the weighted-overlap
    sum for a whole batch of query windows in O(q log n), and ``weights``
    may be a 2-D ``(n, k)`` column stack so ``k`` different weightings of
    the *same* intervals (e.g. a transfer population weighted by rate and
    by stream count) share a single pair of binary searches per query.

    Parameters
    ----------
    te:
        Interval end times; may contain ``inf``.
    weights:
        Per-interval weights (rates, stream counts, instance counts, ...),
        shape ``(n,)`` for one weighting or ``(n, k)`` for ``k`` of them.
    """

    def __init__(self, te: np.ndarray, weights: np.ndarray) -> None:
        te = np.asarray(te, dtype=np.float64).ravel()
        w = np.asarray(weights, dtype=np.float64)
        self._multi = w.ndim == 2
        if not self._multi:
            w = w.reshape(-1, 1)
        if w.ndim != 2 or w.shape[0] != te.size:
            raise ValueError("weights must have shape (n,) or (n, k)")
        self.n = te.size
        finite = np.isfinite(te)
        self._w_inf = w[~finite].sum(axis=0)
        te_f, w_f = te[finite], w[finite]
        order = np.argsort(te_f, kind="stable")
        self._te_sorted = te_f[order]
        zero = np.zeros((1, w.shape[1]))
        self._w_cum = np.concatenate([zero, np.cumsum(w_f[order], axis=0)])
        self._wte_cum = np.concatenate(
            [zero, np.cumsum(w_f[order] * te_f[order][:, None], axis=0)]
        )

    def overlap_sum(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``sum_i w_i * max(0, min(te_i, b) - a)`` per query.

        ``a`` and ``b`` broadcast against each other; requires ``b > a``.
        The caller guarantees every indexed interval starts at or before
        ``a`` (true by construction for an active-transfer population
        queried at the current time).  Returns shape ``(q,)`` for 1-D
        weights, ``(q, k)`` for ``(n, k)`` weights.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if np.any(b <= a):
            raise ValueError("queries must have b > a")
        k = self._w_cum.shape[1]
        shape = np.broadcast_shapes(a.shape, b.shape)
        if self.n == 0:
            out = np.zeros(shape + (k,))
            return out if self._multi else out[..., 0]
        # Ends in (a, b] contribute w*(te - a); ends > b contribute w*(b - a).
        idx_a = np.searchsorted(self._te_sorted, a, side="right")
        idx_b = np.searchsorted(self._te_sorted, b, side="right")
        span = (b - a)[..., None]
        mid = (self._wte_cum[idx_b] - self._wte_cum[idx_a]) - a[..., None] * (
            self._w_cum[idx_b] - self._w_cum[idx_a]
        )
        tail = span * (self._w_cum[-1] - self._w_cum[idx_b])
        out = mid + tail + self._w_inf * span
        np.maximum(out, 0.0, out=out)
        return out if self._multi else out[..., 0]

    def window_sums(self, a: float, b: np.ndarray) -> np.ndarray:
        """Scalar-``a`` fast path of :meth:`overlap_sum`; always ``(q, k)``.

        The serving fix-point issues many small queries anchored at one
        ``now``; resolving ``a`` as a python float once (one scalar binary
        search, no broadcast resolution, method-dispatch ``searchsorted``)
        strips the per-call numpy wrapper overhead that dominates at
        ``q ~ 1``.  Arithmetic is element-for-element the same as
        :meth:`overlap_sum`, so results are bit-identical.
        """
        a = float(a)
        b = np.asarray(b, dtype=np.float64)
        if (b <= a).any():
            raise ValueError("queries must have b > a")
        k = self._w_cum.shape[1]
        if self.n == 0:
            return np.zeros((b.size, k))
        idx_a = int(self._te_sorted.searchsorted(a, side="right"))
        idx_b = self._te_sorted.searchsorted(b, side="right")
        span = (b - a)[:, None]
        mid = (self._wte_cum[idx_b] - self._wte_cum[idx_a]) - a * (
            self._w_cum[idx_b] - self._w_cum[idx_a]
        )
        tail = span * (self._w_cum[-1] - self._w_cum[idx_b])
        out = mid + tail + self._w_inf * span
        np.maximum(out, 0.0, out=out)
        return out


@dataclass
class _EndpointIndexes:
    """Overlap indexes for one endpoint's transfer activity (legacy engine)."""

    out_rate: IntervalOverlapIndex      # weights = R_i, transfers sourced here
    in_rate: IntervalOverlapIndex       # weights = R_i, transfers arriving here
    out_streams: IntervalOverlapIndex   # weights = min(C,F)*P, sourced here
    in_streams: IntervalOverlapIndex   # weights = min(C,F)*P, arriving here
    touch_instances: IntervalOverlapIndex  # weights = min(C,F), either side


# Weight columns of the merged per-endpoint index (groupby engine).
_COL_OUT_RATE = 0
_COL_IN_RATE = 1
_COL_OUT_STREAMS = 2
_COL_IN_STREAMS = 3
_COL_TOUCH_INST = 4
_N_COLS = 5

_FEATURE_KEYS = (
    "K_sout", "K_sin", "K_dout", "K_din",
    "S_sout", "S_sin", "S_dout", "S_din",
    "G_src", "G_dst",
)


class ContentionComputer:
    """Computes the ten §4.3.1 contention features for every transfer.

    Build once from a full log (all transfers the service knows about),
    then call :meth:`compute` for the transfers of interest — the paper
    computes competing load from the *entire* log even when modeling a
    single edge.

    Two engines produce bit-identical output (``repro-tools bench``
    fingerprints the equivalence):

    ``"groupby"`` (default)
        Endpoint labels are factorised to integer codes once; per-endpoint
        row groups come from one stable argsort instead of per-endpoint
        string scans (the legacy builder was O(endpoints x rows) in string
        comparisons).  Each endpoint gets ONE merged
        :class:`IntervalOverlapIndex` over the transfers touching it, with
        five zero-padded weight columns (out/in rate, out/in streams,
        touching instances) — zero-padding is exact, see the index
        docstring — and source-side + destination-side queries are
        answered in a single batched call: 4 binary searches per endpoint
        instead of 40.
    ``"legacy"``
        The original per-endpoint mask builder with five separate 1-D
        indexes; kept as the parity oracle and bench baseline.
    """

    def __init__(self, store: LogStore, engine: str = "groupby") -> None:
        if engine not in ("groupby", "legacy"):
            raise ValueError(f"engine must be 'groupby' or 'legacy', got {engine!r}")
        if len(store) == 0:
            raise ValueError("cannot build contention indexes from empty log")
        self._store = store
        self.engine = engine
        if engine == "legacy":
            data = store.raw()
            self._ts = data["ts"]
            self._te = data["te"]
            self._src = data["src"]
            self._dst = data["dst"]
            inst = np.minimum(data["c"], data["nf"]).astype(np.float64)
            self._streams = inst * data["p"]
        else:
            # Zero-copy read-only views: the full-store copy raw() makes is
            # measurable at bench scale, and the groupby engine never writes.
            self._ts = store.column_view("ts")
            self._te = store.column_view("te")
            self._src = store.column_view("src")
            self._dst = store.column_view("dst")
            inst = np.minimum(
                store.column_view("c"), store.column_view("nf")
            ).astype(np.float64)
            self._streams = inst * store.column_view("p")
        self._rate = store.rates
        self._instances = inst
        if engine == "legacy":
            self._indexes: dict[str, _EndpointIndexes] = {}
            for ep in set(self._src) | set(self._dst):
                self._indexes[str(ep)] = self._build_endpoint(str(ep))
        else:
            self._build_groupby()

    # -- legacy engine -----------------------------------------------------

    def _build_endpoint(self, ep: str) -> _EndpointIndexes:
        is_out = self._src == ep
        is_in = self._dst == ep
        touches = is_out | is_in

        def idx(mask: np.ndarray, w: np.ndarray) -> IntervalOverlapIndex:
            return IntervalOverlapIndex(self._ts[mask], self._te[mask], w[mask])

        return _EndpointIndexes(
            out_rate=idx(is_out, self._rate),
            in_rate=idx(is_in, self._rate),
            out_streams=idx(is_out, self._streams),
            in_streams=idx(is_in, self._streams),
            touch_instances=idx(touches, self._instances),
        )

    # -- groupby engine ----------------------------------------------------

    def _build_groupby(self) -> None:
        # Endpoint labels come pre-factorised (and memoised) by the store;
        # see LogStore.endpoint_codes for why this beats np.unique.
        self.endpoints_, self._src_code, self._dst_code = self._store.endpoint_codes()
        # One stable argsort per side replaces every per-endpoint string
        # scan; within a code block rows stay in ascending original order,
        # matching np.nonzero(mask) exactly.
        self._src_order = np.argsort(self._src_code, kind="stable")
        self._dst_order = np.argsort(self._dst_code, kind="stable")
        eng = np.arange(self.endpoints_.size + 1)
        src_bounds = np.searchsorted(self._src_code[self._src_order], eng)
        dst_bounds = np.searchsorted(self._dst_code[self._dst_order], eng)
        # compute(subset=None) groups the same full row set by the same
        # codes; cache the sort so the common case skips its own argsort.
        self._src_bounds = src_bounds
        self._dst_bounds = dst_bounds

        self._merged: list[IntervalOverlapIndex] = []
        for e in range(self.endpoints_.size):
            out_rows = self._src_order[src_bounds[e] : src_bounds[e + 1]]
            in_rows = self._dst_order[dst_bounds[e] : dst_bounds[e + 1]]
            # Sorted-set union via radix sort + run dedup: both inputs are
            # already ascending, and int sort + a diff mask is several times
            # faster than np.union1d's hash-based unique at this size.
            cat = np.concatenate([out_rows, in_rows])
            cat.sort(kind="stable")
            if cat.size:
                keep = np.empty(cat.size, dtype=bool)
                keep[0] = True
                np.not_equal(cat[1:], cat[:-1], out=keep[1:])
                touch = cat[keep]
            else:
                touch = cat
            pos_out = np.searchsorted(touch, out_rows)
            pos_in = np.searchsorted(touch, in_rows)
            # Weights are built (k, m) so the index's transposed table
            # layout takes them without a copy (it sees the F-ordered .T).
            weights = np.zeros((_N_COLS, touch.size))
            weights[_COL_OUT_RATE, pos_out] = self._rate[out_rows]
            weights[_COL_IN_RATE, pos_in] = self._rate[in_rows]
            weights[_COL_OUT_STREAMS, pos_out] = self._streams[out_rows]
            weights[_COL_IN_STREAMS, pos_in] = self._streams[in_rows]
            weights[_COL_TOUCH_INST] = self._instances[touch]
            self._merged.append(
                IntervalOverlapIndex(
                    self._ts[touch], self._te[touch], weights.T, nonneg=True
                )
            )

    def compute(self, subset: np.ndarray | None = None) -> dict[str, np.ndarray]:
        """Contention features for transfers at positions ``subset`` of the
        full store (all transfers when None).

        Returns a dict with keys ``K_sout, K_sin, K_dout, K_din, S_sout,
        S_sin, S_dout, S_din, G_src, G_dst`` mapping to per-transfer arrays.
        Each value already includes the 1/(Te_k - Ts_k) scaling of Eq. 2 and
        excludes the transfer's own contribution.
        """
        full = subset is None
        if full:
            subset = np.arange(len(self._store))
            # Full-store compute reads the columns as-is; the fancy-index
            # gathers below would just copy them.
            ts, te = self._ts, self._te
            rate, streams, instances = self._rate, self._streams, self._instances
        else:
            subset = np.asarray(subset)
            ts = self._ts[subset]
            te = self._te[subset]
            rate = self._rate[subset]
            streams = self._streams[subset]
            instances = self._instances[subset]
        n = subset.size
        out = {name: np.zeros(n) for name in _FEATURE_KEYS}
        dur = te - ts

        if self.engine == "legacy":
            self._compute_legacy(subset, out, ts, te, dur, rate, streams, instances)
        else:
            self._compute_groupby(
                subset, out, ts, te, dur, rate, streams, instances, full
            )

        # Numerical floor: the self-subtraction above cancels two numbers of
        # magnitude ~w_k * duration, which can leave residue of either sign
        # around zero.  Clamp anything negligible relative to the transfer's
        # own weight to exactly zero.
        self_weight = {
            "K_sout": rate, "K_din": rate,
            "S_sout": streams, "S_din": streams,
            "G_src": instances, "G_dst": instances,
        }
        for key, v in out.items():
            np.maximum(v, 0.0, out=v)
            if key in self_weight:
                v[v < 1e-9 * np.maximum(self_weight[key], 1.0)] = 0.0
        return out

    def _compute_legacy(self, subset, out, ts, te, dur, rate, streams, instances):
        src = self._src[subset]
        dst = self._dst[subset]
        # Group queries per endpoint so each index is queried in bulk.
        for ep, idxs in self._indexes.items():
            at_src = np.nonzero(src == ep)[0]
            at_dst = np.nonzero(dst == ep)[0]
            if at_src.size:
                a, b, d = ts[at_src], te[at_src], dur[at_src]
                # Outgoing sets at the source include k itself: subtract
                # the self term w_k * duration before scaling.
                out["K_sout"][at_src] = (
                    idxs.out_rate.overlap_sum(a, b) - rate[at_src] * d
                ) / d
                out["S_sout"][at_src] = (
                    idxs.out_streams.overlap_sum(a, b) - streams[at_src] * d
                ) / d
                out["K_sin"][at_src] = idxs.in_rate.overlap_sum(a, b) / d
                out["S_sin"][at_src] = idxs.in_streams.overlap_sum(a, b) / d
                out["G_src"][at_src] = (
                    idxs.touch_instances.overlap_sum(a, b) - instances[at_src] * d
                ) / d
            if at_dst.size:
                a, b, d = ts[at_dst], te[at_dst], dur[at_dst]
                out["K_din"][at_dst] = (
                    idxs.in_rate.overlap_sum(a, b) - rate[at_dst] * d
                ) / d
                out["S_din"][at_dst] = (
                    idxs.in_streams.overlap_sum(a, b) - streams[at_dst] * d
                ) / d
                out["K_dout"][at_dst] = idxs.out_rate.overlap_sum(a, b) / d
                out["S_dout"][at_dst] = idxs.out_streams.overlap_sum(a, b) / d
                out["G_dst"][at_dst] = (
                    idxs.touch_instances.overlap_sum(a, b) - instances[at_dst] * d
                ) / d

    def _compute_groupby(
        self, subset, out, ts, te, dur, rate, streams, instances, full=False
    ):
        if full:
            # subset is arange(n): the grouping is exactly the one cached at
            # build time, so skip the two argsorts.
            order_s, order_d = self._src_order, self._dst_order
            bounds_s, bounds_d = self._src_bounds, self._dst_bounds
        else:
            src_c = self._src_code[subset]
            dst_c = self._dst_code[subset]
            order_s = np.argsort(src_c, kind="stable")
            order_d = np.argsort(dst_c, kind="stable")
            eng = np.arange(self.endpoints_.size + 1)
            bounds_s = np.searchsorted(src_c[order_s], eng)
            bounds_d = np.searchsorted(dst_c[order_d], eng)

        for e in range(self.endpoints_.size):
            at_src = order_s[bounds_s[e] : bounds_s[e + 1]]
            at_dst = order_d[bounds_d[e] : bounds_d[e + 1]]
            ns = at_src.size
            if ns == 0 and at_dst.size == 0:
                continue
            # Source-side and destination-side queries share the merged
            # index; one concatenated call does 4 binary searches total.
            a = np.concatenate([ts[at_src], ts[at_dst]])
            b = np.concatenate([te[at_src], te[at_dst]])
            res = self._merged[e].overlap_sum_fast(a, b)
            rs = res[:ns]
            rd = res[ns:]
            if ns:
                d = dur[at_src]
                # Outgoing sets at the source include k itself: subtract
                # the self term w_k * duration before scaling.
                out["K_sout"][at_src] = (
                    rs[:, _COL_OUT_RATE] - rate[at_src] * d
                ) / d
                out["S_sout"][at_src] = (
                    rs[:, _COL_OUT_STREAMS] - streams[at_src] * d
                ) / d
                out["K_sin"][at_src] = rs[:, _COL_IN_RATE] / d
                out["S_sin"][at_src] = rs[:, _COL_IN_STREAMS] / d
                out["G_src"][at_src] = (
                    rs[:, _COL_TOUCH_INST] - instances[at_src] * d
                ) / d
            if at_dst.size:
                d = dur[at_dst]
                out["K_din"][at_dst] = (
                    rd[:, _COL_IN_RATE] - rate[at_dst] * d
                ) / d
                out["S_din"][at_dst] = (
                    rd[:, _COL_IN_STREAMS] - streams[at_dst] * d
                ) / d
                out["K_dout"][at_dst] = rd[:, _COL_OUT_RATE] / d
                out["S_dout"][at_dst] = rd[:, _COL_OUT_STREAMS] / d
                out["G_dst"][at_dst] = (
                    rd[:, _COL_TOUCH_INST] - instances[at_dst] * d
                ) / d
