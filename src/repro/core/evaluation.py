"""Robust evaluation: repeated splits and seed sweeps.

The paper evaluates each model on a single random 70/30 split.  MdAPE from
one split is itself a random variable; for edges with a few hundred
transfers its spread across splits can rival the LR-vs-XGB gap being
measured.  :func:`repeated_split_mdape` quantifies that spread, and
:func:`compare_models` turns it into a defensible win/loss verdict
(non-overlapping interquartile ranges rather than a single-draw
comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import FeatureMatrix
from repro.core.pipeline import GBTSettings, fit_edge_model

__all__ = ["SplitDistribution", "repeated_split_mdape", "compare_models"]


@dataclass(frozen=True)
class SplitDistribution:
    """MdAPE distribution over repeated random splits.

    Attributes
    ----------
    mdapes:
        One test MdAPE per split seed.
    """

    src: str
    dst: str
    model_kind: str
    mdapes: np.ndarray

    @property
    def median(self) -> float:
        return float(np.median(self.mdapes))

    @property
    def iqr(self) -> tuple[float, float]:
        return (
            float(np.percentile(self.mdapes, 25)),
            float(np.percentile(self.mdapes, 75)),
        )

    @property
    def spread(self) -> float:
        """IQR width — the resolution limit of single-split comparisons."""
        lo, hi = self.iqr
        return hi - lo


def repeated_split_mdape(
    features: FeatureMatrix,
    src: str,
    dst: str,
    model: str = "gbt",
    n_splits: int = 10,
    threshold: float = 0.5,
    base_seed: int = 0,
    gbt: GBTSettings | None = None,
) -> SplitDistribution:
    """Fit/evaluate over ``n_splits`` different 70/30 splits."""
    if n_splits < 2:
        raise ValueError("need at least 2 splits")
    mdapes = []
    for k in range(n_splits):
        res = fit_edge_model(
            features, src, dst, model=model, threshold=threshold,
            seed=base_seed + k, gbt=gbt,
        )
        mdapes.append(res.mdape)
    return SplitDistribution(
        src=src, dst=dst, model_kind=model, mdapes=np.array(mdapes)
    )


def compare_models(
    features: FeatureMatrix,
    src: str,
    dst: str,
    n_splits: int = 10,
    threshold: float = 0.5,
    base_seed: int = 0,
    gbt: GBTSettings | None = None,
) -> dict:
    """LR-vs-XGB comparison that accounts for split noise.

    Returns a dict with both distributions, the per-split win rate (same
    split seed feeds both models, so wins are paired), and whether the
    interquartile ranges separate cleanly.
    """
    linear = repeated_split_mdape(
        features, src, dst, model="linear", n_splits=n_splits,
        threshold=threshold, base_seed=base_seed,
    )
    nonlinear = repeated_split_mdape(
        features, src, dst, model="gbt", n_splits=n_splits,
        threshold=threshold, base_seed=base_seed, gbt=gbt,
    )
    wins = float(np.mean(nonlinear.mdapes < linear.mdapes))
    separated = nonlinear.iqr[1] < linear.iqr[0] or linear.iqr[1] < nonlinear.iqr[0]
    return {
        "linear": linear,
        "gbt": nonlinear,
        "gbt_win_rate": wins,
        "iqr_separated": bool(separated),
    }
