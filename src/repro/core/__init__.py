"""The paper's primary contribution: log-driven transfer-rate modeling.

Layers:

- :mod:`~repro.core.contention` — time-overlap-weighted aggregation over
  competing transfers (Eq. 2 and friends), via prefix-sum interval sweeps.
- :mod:`~repro.core.features` — the Table 2 feature matrix builder.
- :mod:`~repro.core.endpoint_features` — per-endpoint ROmax/RImax (§5.4).
- :mod:`~repro.core.analytical` — the Eq. 1 bound model, bottleneck
  classification, relative external load, and the Rmax-threshold filter.
- :mod:`~repro.core.pipeline` — per-edge and all-edges model training and
  evaluation (§5.1–§5.4).
- :mod:`~repro.core.explain` — coefficient/importance grids (Figures 9, 12).
"""

from repro.core.contention import (
    ActiveOverlapIndex,
    ContentionComputer,
    IntervalOverlapIndex,
)
from repro.core.features import (
    FEATURE_NAMES,
    EXPLANATION_FEATURE_NAMES,
    FeatureMatrix,
    build_feature_matrix,
)
from repro.core.endpoint_features import EndpointCapability, estimate_endpoint_capabilities
from repro.core.analytical import (
    max_achievable_rate,
    classify_bottleneck,
    relative_external_load,
    estimate_endpoint_maxima,
    threshold_mask,
)
from repro.core.pipeline import (
    EdgeModelResult,
    GlobalModelResult,
    fit_edge_model,
    fit_all_edge_models,
    fit_global_model,
    select_heavy_edges,
)
from repro.core.explain import significance_grid, SignificanceGrid
from repro.core.online import (
    ActiveTransferView,
    OnlineFeatureEstimator,
    OnlinePredictor,
    active_views_from_log,
)
from repro.core.advisor import (
    TunableAdvisor,
    TunableRecommendation,
    SourceSelector,
    AdmissionPlanner,
    PlannedTransfer,
)

__all__ = [
    "IntervalOverlapIndex",
    "ActiveOverlapIndex",
    "ContentionComputer",
    "FEATURE_NAMES",
    "EXPLANATION_FEATURE_NAMES",
    "FeatureMatrix",
    "build_feature_matrix",
    "EndpointCapability",
    "estimate_endpoint_capabilities",
    "max_achievable_rate",
    "classify_bottleneck",
    "relative_external_load",
    "estimate_endpoint_maxima",
    "threshold_mask",
    "EdgeModelResult",
    "GlobalModelResult",
    "fit_edge_model",
    "fit_all_edge_models",
    "fit_global_model",
    "select_heavy_edges",
    "significance_grid",
    "SignificanceGrid",
    "ActiveTransferView",
    "OnlineFeatureEstimator",
    "OnlinePredictor",
    "active_views_from_log",
    "TunableAdvisor",
    "TunableRecommendation",
    "SourceSelector",
    "AdmissionPlanner",
    "PlannedTransfer",
]
