"""The Table 2 feature matrix.

"We use the lower 15 terms as features in our models": the four contending
rates K, C, P, the four stream counts S, Nd, Nb, the two GridFTP instance
counts G, and Nf.  Nflt "is not known in advance, however, we use it for
explanation — see Figures 9 and 12 — but not prediction", so the builder
exposes both the 15-feature prediction view and the 16-feature explanation
view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.contention import ContentionComputer
from repro.logs.store import LogStore

__all__ = [
    "FEATURE_NAMES",
    "EXPLANATION_FEATURE_NAMES",
    "FeatureMatrix",
    "build_feature_matrix",
]

# Order follows the feature axis of Figures 9 and 12.
FEATURE_NAMES: tuple[str, ...] = (
    "K_sout", "K_din", "C", "P",
    "S_sout", "S_sin", "S_dout", "S_din",
    "K_sin", "K_dout", "Nd", "Nb",
    "G_src", "G_dst", "Nf",
)
EXPLANATION_FEATURE_NAMES: tuple[str, ...] = (
    "K_sout", "K_din", "C", "P",
    "S_sout", "S_sin", "S_dout", "S_din",
    "K_sin", "K_dout", "Nd", "Nb", "Nflt",
    "G_src", "G_dst", "Nf",
)


@dataclass
class FeatureMatrix:
    """Per-transfer features aligned with a log store.

    Attributes
    ----------
    store:
        The source log (row i of every array describes ``store.record(i)``).
    columns:
        Mapping of feature name to per-transfer values, covering the
        explanation feature set.
    y:
        Target: average transfer rate, bytes/s.
    """

    store: LogStore
    columns: dict[str, np.ndarray]
    y: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.store)
        if self.y.shape != (n,):
            raise ValueError("y misaligned with store")
        for name, col in self.columns.items():
            if col.shape != (n,):
                raise ValueError(f"column {name!r} misaligned with store")
        missing = set(EXPLANATION_FEATURE_NAMES) - set(self.columns)
        if missing:
            raise ValueError(f"missing feature columns {sorted(missing)}")

    def __len__(self) -> int:
        return len(self.store)

    def matrix(
        self,
        names: tuple[str, ...] = FEATURE_NAMES,
        rows: np.ndarray | None = None,
    ) -> np.ndarray:
        """Dense (n, len(names)) matrix; optionally restricted to ``rows``."""
        cols = [self.columns[n] for n in names]
        X = np.column_stack(cols)
        return X if rows is None else X[rows]

    def subset(self, rows: np.ndarray) -> "FeatureMatrix":
        """Row-sliced copy (keeps store and features aligned)."""
        rows = np.asarray(rows)
        return FeatureMatrix(
            store=self.store[rows],
            columns={k: v[rows] for k, v in self.columns.items()},
            y=self.y[rows],
        )

    def edge_rows(self, src: str, dst: str) -> np.ndarray:
        """Row indices of one edge's transfers."""
        return np.nonzero(
            (self.store.column("src") == src) & (self.store.column("dst") == dst)
        )[0]


def build_feature_matrix(store: LogStore) -> FeatureMatrix:
    """Derive the full feature set from a transfer log.

    The contention features are computed against the *entire* store — every
    logged transfer competes — exactly as the paper reconstructs "resource
    load conditions on endpoints during each transfer" from the full log.
    """
    if len(store) == 0:
        raise ValueError("cannot build features from an empty store")
    computer = ContentionComputer(store)
    contention = computer.compute()

    columns: dict[str, np.ndarray] = {}
    columns.update(contention)
    columns["C"] = store.column("c").astype(np.float64)
    columns["P"] = store.column("p").astype(np.float64)
    columns["Nd"] = store.column("nd").astype(np.float64)
    columns["Nb"] = store.column("nb").astype(np.float64)
    columns["Nf"] = store.column("nf").astype(np.float64)
    columns["Nflt"] = store.column("nflt").astype(np.float64)

    return FeatureMatrix(store=store, columns=columns, y=store.rates)
