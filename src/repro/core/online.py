"""Online rate prediction at submission time.

The paper's motivating use case — "Our predictions can be used for
distributed workflow scheduling and optimization" — requires features
*before* a transfer runs.  The training pipeline computes Eq. 2 features
retrospectively (overlap-scaled over each transfer's actual lifetime); at
submission time neither the transfer's duration nor the future arrival
process is known.

:class:`OnlineFeatureEstimator` approximates the Table 2 features from the
*currently active* transfer population under a persistence assumption:
whatever is running now keeps running at its current average rate for the
duration of the new transfer.  This is exactly the information a scheduler
has, and §5's models consume the estimates unchanged.

:class:`OnlinePredictor` bundles a fitted model with the estimator and a
duration fix-point: predicted rate determines assumed duration, which
determines overlap scaling, which changes the features — a few iterations
converge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import FEATURE_NAMES
from repro.core.pipeline import EdgeModelResult, GlobalModelResult
from repro.logs.store import LogStore
from repro.sim.gridftp import TransferRequest

__all__ = [
    "ActiveTransferView",
    "OnlineFeatureEstimator",
    "OnlinePredictor",
    "active_views_from_log",
]


@dataclass(frozen=True)
class ActiveTransferView:
    """What a scheduler knows about one in-flight transfer.

    Attributes
    ----------
    src, dst:
        Endpoint names.
    rate:
        Current average rate, bytes/s (from progress reports).
    started_at:
        Submission time, seconds.
    expected_end:
        Best-effort completion estimate; ``inf`` if unknown (treated as
        running forever, the conservative choice for contention).
    concurrency, parallelism, n_files:
        Tunables and file count (for G and S features).
    """

    src: str
    dst: str
    rate: float
    started_at: float
    expected_end: float = float("inf")
    concurrency: int = 2
    parallelism: int = 4
    n_files: int = 1_000_000

    def __post_init__(self) -> None:
        # NaN slips through plain comparisons (every NaN comparison is
        # False), then poisons every contention feature it touches — reject
        # it here so the serving layer can never ingest a poisoned view.
        if not np.isfinite(self.rate) or self.rate < 0:
            raise ValueError(f"rate must be finite and >= 0, got {self.rate}")
        if not np.isfinite(self.started_at):
            raise ValueError(f"started_at must be finite, got {self.started_at}")
        if np.isnan(self.expected_end):
            raise ValueError("expected_end must not be NaN (use inf for unknown)")
        if self.expected_end <= self.started_at:
            raise ValueError("expected_end must be after started_at")
        if self.concurrency < 1 or self.parallelism < 1 or self.n_files < 1:
            raise ValueError("C, P, Nf must be >= 1")

    @property
    def instances(self) -> float:
        return float(min(self.concurrency, self.n_files))

    @property
    def streams(self) -> float:
        return self.instances * self.parallelism


def active_views_from_log(
    log: LogStore,
    now: float,
    lookback_s: float | None = None,
    exclude_transfer_id: int | None = None,
) -> list[tuple[int, ActiveTransferView]]:
    """(transfer_id, view) pairs for every transfer in flight at ``now``.

    Selection is ``ts <= now < te``; ``lookback_s``, when given, further
    restricts to transfers started within the last ``lookback_s`` seconds
    (an optional cap — long-running transfers are active regardless of age
    unless the caller explicitly bounds the view).
    """
    data = log.raw()
    mask = (data["ts"] <= now) & (data["te"] > now)
    if lookback_s is not None:
        if lookback_s <= 0:
            raise ValueError("lookback_s must be > 0")
        mask &= data["ts"] >= now - lookback_s
    if exclude_transfer_id is not None:
        mask &= data["transfer_id"] != exclude_transfer_id
    out = []
    for i in np.nonzero(mask)[0]:
        rate = data["nb"][i] / (data["te"][i] - data["ts"][i])
        out.append(
            (
                int(data["transfer_id"][i]),
                ActiveTransferView(
                    src=str(data["src"][i]),
                    dst=str(data["dst"][i]),
                    rate=float(rate),
                    started_at=float(data["ts"][i]),
                    expected_end=float(data["te"][i]),
                    concurrency=int(data["c"][i]),
                    parallelism=int(data["p"][i]),
                    n_files=int(data["nf"][i]),
                ),
            )
        )
    return out


class OnlineFeatureEstimator:
    """Estimates Eq. 2 features for a *hypothetical* transfer from the
    currently active population."""

    def __init__(self, active: list[ActiveTransferView]) -> None:
        self.active = list(active)

    @classmethod
    def from_log_window(
        cls,
        log: LogStore,
        now: float,
        lookback_s: float | None = None,
        exclude_transfer_id: int | None = None,
    ) -> "OnlineFeatureEstimator":
        """Build the active view from a log, treating transfers that span
        ``now`` as active (useful for replay evaluation).

        A transfer is active iff ``ts <= now < te`` — regardless of how long
        ago it started; a multi-hour transfer still in flight is exactly the
        competition a scheduler must account for.  ``lookback_s`` is an
        *optional* cap that additionally drops transfers older than
        ``now - lookback_s`` (useful to bound the view when replaying huge
        logs); by default no cap is applied.

        Pass ``exclude_transfer_id`` when evaluating a logged transfer at
        its own start time, so it does not count as its own competition.
        """
        return cls([v for _, v in active_views_from_log(
            log, now, lookback_s=lookback_s,
            exclude_transfer_id=exclude_transfer_id,
        )])

    def estimate(
        self,
        request: TransferRequest,
        now: float,
        assumed_duration_s: float,
    ) -> dict[str, float]:
        """Feature estimates for ``request`` starting at ``now`` and lasting
        ``assumed_duration_s`` under the persistence assumption.

        Returns the full 15-feature dict (Table 2 order not guaranteed).
        """
        if assumed_duration_s <= 0:
            raise ValueError("assumed_duration_s must be > 0")
        t_end = now + assumed_duration_s
        feats = {
            "K_sout": 0.0, "K_sin": 0.0, "K_dout": 0.0, "K_din": 0.0,
            "S_sout": 0.0, "S_sin": 0.0, "S_dout": 0.0, "S_din": 0.0,
            "G_src": 0.0, "G_dst": 0.0,
        }
        for a in self.active:
            # Overlap of the active transfer with [now, t_end], scaled by
            # the hypothetical transfer's duration (Eq. 2's O/(Te-Ts)).
            overlap = max(0.0, min(a.expected_end, t_end) - now)
            f = overlap / assumed_duration_s
            if f <= 0:
                continue
            if a.src == request.src:
                feats["K_sout"] += f * a.rate
                feats["S_sout"] += f * a.streams
            if a.dst == request.src:
                feats["K_sin"] += f * a.rate
                feats["S_sin"] += f * a.streams
            if a.src == request.dst:
                feats["K_dout"] += f * a.rate
                feats["S_dout"] += f * a.streams
            if a.dst == request.dst:
                feats["K_din"] += f * a.rate
                feats["S_din"] += f * a.streams
            if request.src in (a.src, a.dst):
                feats["G_src"] += f * a.instances
            if request.dst in (a.src, a.dst):
                feats["G_dst"] += f * a.instances
        feats["C"] = float(request.concurrency)
        feats["P"] = float(request.parallelism)
        feats["Nd"] = float(request.n_dirs)
        feats["Nb"] = float(request.total_bytes)
        feats["Nf"] = float(request.n_files)
        return feats


@dataclass
class OnlinePredictor:
    """Submission-time rate prediction with a duration fix-point.

    Parameters
    ----------
    result:
        A fitted per-edge (:class:`EdgeModelResult`) or global
        (:class:`GlobalModelResult`) pipeline result.  For the global model,
        supply ``extra_columns`` matching its extra features (ROmax_src,
        RImax_dst, optionally distance_km).
    estimator:
        The current active-transfer view.
    max_iterations / tolerance:
        Fix-point controls: predict -> assume duration -> re-estimate
        features -> re-predict until the rate stabilises.
    """

    result: EdgeModelResult | GlobalModelResult
    estimator: OnlineFeatureEstimator
    max_iterations: int = 8
    tolerance: float = 0.01
    extra_columns: dict[str, float] = field(default_factory=dict)
    _engine: object = field(default=None, repr=False, compare=False)

    def predict(self, request: TransferRequest, now: float) -> float:
        """Predicted average rate (bytes/s) for ``request`` starting now.

        Delegates to :class:`repro.serve.BatchOnlinePredictor` with a batch
        of one, so scalar and batch predictions are bit-identical.  The
        estimator's active view is snapshotted into the engine on first use;
        build a fresh predictor for a changed population.
        """
        return float(self.engine.predict_batch([request], now)[0])

    @property
    def engine(self):
        """The underlying :class:`~repro.serve.BatchOnlinePredictor`
        (created on first access), exposing per-call instrumentation as
        ``engine.stats``."""
        if self._engine is None:
            from repro.serve import ActiveSet, BatchOnlinePredictor

            self._engine = BatchOnlinePredictor(
                self.result,
                ActiveSet.from_views(self.estimator.active),
                max_iterations=self.max_iterations,
                tolerance=self.tolerance,
                extra_columns=self.extra_columns,
            )
        return self._engine
