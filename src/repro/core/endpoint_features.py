"""Endpoint capability features for the single all-edges model (§5.4).

"Since we lack information about endpoint properties, such as NIC capacity,
CPU speed, core count, memory capacity, and storage bandwidth, we use data
from Globus logs to construct two new features for each endpoint":

- ``ROmax(E) = max over transfers x sourced at E of (R_x + Ksout(x))`` —
  the endpoint's demonstrated maximum *aggregate outgoing* rate;
- ``RImax(E) = max over transfers x arriving at E of (R_x + Kdin(x))`` —
  its maximum aggregate incoming rate.

A transfer's own rate plus the simultaneous competing rate at the endpoint
lower-bounds what the endpoint hardware sustained at that moment, so the
max over history estimates capability without any probe access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import FeatureMatrix

__all__ = ["EndpointCapability", "estimate_endpoint_capabilities", "capability_columns"]


@dataclass(frozen=True)
class EndpointCapability:
    """ROmax/RImax pair for one endpoint, bytes/s.

    0.0 in a direction means the endpoint never appeared on that side of a
    transfer (missing information).
    """

    endpoint: str
    ro_max: float
    ri_max: float


def estimate_endpoint_capabilities(
    features: FeatureMatrix,
) -> dict[str, EndpointCapability]:
    """Compute ROmax/RImax for every endpoint in the feature matrix's log."""
    store = features.store
    if len(store) == 0:
        raise ValueError("empty feature matrix")
    src = store.column("src")
    dst = store.column("dst")
    rates = features.y
    k_sout = features.columns["K_sout"]
    k_din = features.columns["K_din"]

    out_sum = rates + k_sout   # aggregate outgoing at source during x
    in_sum = rates + k_din     # aggregate incoming at destination during x

    caps: dict[str, EndpointCapability] = {}
    for ep in sorted(set(src) | set(dst)):
        as_src = out_sum[src == ep]
        as_dst = in_sum[dst == ep]
        caps[str(ep)] = EndpointCapability(
            endpoint=str(ep),
            ro_max=float(as_src.max()) if as_src.size else 0.0,
            ri_max=float(as_dst.max()) if as_dst.size else 0.0,
        )
    return caps


def capability_columns(
    features: FeatureMatrix,
    capabilities: dict[str, EndpointCapability] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-transfer (ROmax of source, RImax of destination) columns.

    These are the two extra regressors of Eq. 5.  Pass pre-computed
    ``capabilities`` (e.g. from training data only) to avoid leaking test
    transfers into the capability estimates.
    """
    caps = capabilities or estimate_endpoint_capabilities(features)
    src = features.store.column("src")
    dst = features.store.column("dst")
    default = EndpointCapability("?", 0.0, 0.0)
    ro = np.array([caps.get(str(s), default).ro_max for s in src])
    ri = np.array([caps.get(str(d), default).ri_max for d in dst])
    return ro, ri
