"""Model training/evaluation pipelines (§5.1–§5.4).

Workflow per edge (the paper's §5.1/§5.2 recipe):

1. take the edge's transfers from the full log;
2. drop transfers below ``threshold * Rmax(edge)`` (§4.3.2 unknown-load
   filter; edges are used only if >= ``min_samples`` transfers survive);
3. eliminate low-variance features (C and P in practice — the red crosses);
4. standardise features (fit on train only);
5. random 70/30 train/test split;
6. fit linear regression or gradient boosting; report test MdAPE.

The single all-edges model (§5.4) pools the 30 edges' filtered transfers
and appends the two endpoint-capability features ROmax/RImax of Eq. 5,
estimated from training rows only.

Every fit function accepts an optional :class:`~repro.obs.Tracer`: the
prepare / train / evaluate stages emit nested spans
(``pipeline.fit_edge`` -> ``pipeline.prepare`` / ``pipeline.train`` /
``pipeline.eval``), so refit time shows up in the same trace buffer and
``trace_span_seconds`` histograms as the serving path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.core.analytical import EndpointMaxima, threshold_mask
from repro.core.endpoint_features import (
    EndpointCapability,
    capability_columns,
    estimate_endpoint_capabilities,
)
from repro.core.features import (
    EXPLANATION_FEATURE_NAMES,
    FEATURE_NAMES,
    FeatureMatrix,
)
from repro.logs.store import LogStore
from repro.ml.gbt import GradientBoostingRegressor
from repro.ml.linear import LinearRegression
from repro.ml.metrics import absolute_percentage_errors, mdape
from repro.ml.persistence import model_from_dict, model_to_dict
from repro.ml.scaler import StandardScaler
from repro.ml.selection import low_variance_features, train_test_split
from repro.obs.tracing import NULL_SPAN, Tracer

__all__ = [
    "GBTSettings",
    "EdgeModelResult",
    "GlobalModelResult",
    "GlobalFeatureAdapter",
    "select_heavy_edges",
    "fit_edge_model",
    "fit_all_edge_models",
    "fit_global_model",
    "edge_result_to_payload",
    "edge_result_from_payload",
    "edge_results_fingerprint",
]

# Bump to invalidate cached per-edge model bundles after pipeline changes.
EDGE_MODEL_VERSION = 1


def _span(tracer: Tracer | None, name: str, **attrs):
    """A tracer span, or the shared no-op when tracing is off."""
    if tracer is None or not tracer.enabled:
        return NULL_SPAN
    return tracer.span(name, **attrs)


@dataclass(frozen=True)
class GBTSettings:
    """Hyperparameters for the nonlinear (XGB-style) models."""

    n_estimators: int = 300
    learning_rate: float = 0.08
    max_depth: int = 4
    min_child_weight: float = 5.0
    reg_lambda: float = 1.0
    subsample: float = 0.9
    colsample_bytree: float = 1.0

    def build(self, seed: int | None) -> GradientBoostingRegressor:
        return GradientBoostingRegressor(
            n_estimators=self.n_estimators,
            learning_rate=self.learning_rate,
            max_depth=self.max_depth,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            subsample=self.subsample,
            colsample_bytree=self.colsample_bytree,
            random_state=seed,
        )


@dataclass
class EdgeModelResult:
    """Fitted model + evaluation for one edge.

    Attributes
    ----------
    src, dst:
        The edge.
    model_kind:
        ``"linear"`` or ``"gbt"``.
    feature_names:
        Features offered to the model (prediction or explanation set).
    kept:
        Boolean mask over ``feature_names``: False = eliminated for low
        variance (Figures 9/12 red crosses).
    significance:
        Per-feature scores aligned with ``feature_names``; |standardised
        coefficient| for linear, gain importance for gbt; NaN where
        eliminated.
    n_train, n_test:
        Split sizes after filtering.
    test_errors:
        Per-test-transfer absolute percentage errors (Figure 10's violins).
    mdape:
        Median of ``test_errors`` (Figure 11's bars).
    """

    src: str
    dst: str
    model_kind: str
    feature_names: tuple[str, ...]
    kept: np.ndarray
    significance: np.ndarray
    n_train: int
    n_test: int
    test_errors: np.ndarray
    mdape: float
    model: object = field(repr=False, default=None)
    scaler: StandardScaler | None = field(repr=False, default=None)

    @property
    def edge(self) -> tuple[str, str]:
        return (self.src, self.dst)


@dataclass
class GlobalModelResult:
    """The §5.4 single model across all edges."""

    model_kind: str
    feature_names: tuple[str, ...]
    n_train: int
    n_test: int
    test_errors: np.ndarray
    mdape: float
    model: object = field(repr=False, default=None)
    scaler: StandardScaler | None = field(repr=False, default=None)


# Extra regressors a global model may carry beyond the Table 2 features.
_GLOBAL_EXTRA_NAMES = ("ROmax_src", "RImax_dst", "distance_km")


@dataclass(frozen=True)
class GlobalFeatureAdapter:
    """Maps a transfer request onto a global model's extra features.

    A :class:`GlobalModelResult` needs per-request values for Eq. 5's
    endpoint-capability regressors (``ROmax_src``, ``RImax_dst``) and,
    when fitted with ``include_rtt=True``, the edge's ``distance_km``.
    At serving time those come from *this* adapter, not from the request:
    the serving layer looks up the request's endpoints here and feeds the
    resulting columns into the batch predictor.  This is what lets the
    §5.4 global model act as the fallback tier for edges that have no
    dedicated model (see :class:`repro.serve.FallbackChain`).

    Attributes
    ----------
    capabilities:
        Per-endpoint ROmax/RImax estimates; 0.0 in a direction means
        "never observed", i.e. the adapter does not cover that endpoint
        in that role.
    distances:
        Optional per-edge great-circle distances, required only by
        ``include_rtt`` models.
    """

    capabilities: dict[str, EndpointCapability]
    distances: dict[tuple[str, str], float] | None = None

    @classmethod
    def from_features(cls, features: FeatureMatrix) -> "GlobalFeatureAdapter":
        """Estimate capabilities (and edge distances) from a feature matrix,
        typically the same training data the global model was fitted on."""
        caps = estimate_endpoint_capabilities(features)
        store = features.store
        distances: dict[tuple[str, str], float] = {}
        src = store.column("src")
        dst = store.column("dst")
        dist = store.column("distance_km")
        for s, d, km in zip(src, dst, dist):
            distances.setdefault((str(s), str(d)), float(km))
        return cls(capabilities=caps, distances=distances)

    @classmethod
    def from_endpoint_maxima(
        cls, maxima: dict[str, EndpointMaxima]
    ) -> "GlobalFeatureAdapter":
        """Build from §3.2 log-estimated endpoint maxima.

        ``DRmax`` (max observed rate as source) lower-bounds ``ROmax`` and
        ``DWmax`` lower-bounds ``RImax`` — a single transfer's rate is the
        degenerate aggregate — so the maxima are a usable, if conservative,
        capability estimate when no feature matrix is at hand.
        """
        caps = {
            ep: EndpointCapability(endpoint=ep, ro_max=m.dr_max, ri_max=m.dw_max)
            for ep, m in maxima.items()
        }
        return cls(capabilities=caps)

    def _extra_names(self, result: GlobalModelResult) -> list[str]:
        return [n for n in result.feature_names if n in _GLOBAL_EXTRA_NAMES]

    def covers(self, result: GlobalModelResult, src: str, dst: str) -> bool:
        """Whether every extra feature ``result`` needs is available for a
        ``src -> dst`` request (capability 0.0 counts as unavailable)."""
        for name in self._extra_names(result):
            if name == "ROmax_src":
                cap = self.capabilities.get(src)
                if cap is None or cap.ro_max <= 0:
                    return False
            elif name == "RImax_dst":
                cap = self.capabilities.get(dst)
                if cap is None or cap.ri_max <= 0:
                    return False
            elif name == "distance_km":
                if self.distances is None or (src, dst) not in self.distances:
                    return False
        return True

    def extra_columns(
        self, result: GlobalModelResult, requests
    ) -> dict[str, np.ndarray]:
        """Per-request arrays for the extra features ``result`` needs.

        Callers should check :meth:`covers` first; uncovered endpoints get
        0.0 here (the fitted model saw no such value, so predictions would
        be extrapolations).
        """
        out: dict[str, np.ndarray] = {}
        default = EndpointCapability("?", 0.0, 0.0)
        for name in self._extra_names(result):
            if name == "ROmax_src":
                out[name] = np.array(
                    [self.capabilities.get(r.src, default).ro_max for r in requests]
                )
            elif name == "RImax_dst":
                out[name] = np.array(
                    [self.capabilities.get(r.dst, default).ri_max for r in requests]
                )
            else:
                dist = self.distances or {}
                out[name] = np.array(
                    [dist.get((r.src, r.dst), 0.0) for r in requests]
                )
        return out


def select_heavy_edges(
    store: LogStore,
    min_samples: int = 300,
    threshold: float = 0.5,
    max_edges: int | None = 30,
) -> list[tuple[str, str]]:
    """Edges with >= ``min_samples`` transfers above the threshold filter,
    busiest first (§5.1: "edges that have at least 300 transfers with rate
    greater than 0.5 Rmax")."""
    mask = threshold_mask(store, threshold)
    filtered = store[mask]
    heavy = filtered.heavy_edges(min_samples)
    return heavy[:max_edges] if max_edges is not None else heavy


def _prepare_edge_data(
    features: FeatureMatrix,
    rows: np.ndarray,
    names: tuple[str, ...],
    train_idx: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(X, y, kept-mask) for the given rows with low-variance elimination.

    Elimination is decided from the *training* rows only — deciding it from
    all rows would leak test-set variance into model selection (the global
    pipeline already restricts to ``X[tr]``; the edge pipeline must too).
    """
    X = features.matrix(names, rows)
    y = features.y[rows]
    eliminated = low_variance_features(X[train_idx], threshold=0.05)
    kept = ~eliminated
    if not kept.any():
        raise ValueError("all features eliminated — degenerate edge data")
    return X[:, kept], y, kept


def _filtered_edge_rows(
    features: FeatureMatrix,
    src: str,
    dst: str,
    threshold: float,
    threshold_mask_full: np.ndarray,
) -> np.ndarray:
    rows = features.edge_rows(src, dst)
    return rows[threshold_mask_full[rows]]


def fit_edge_model(
    features: FeatureMatrix,
    src: str,
    dst: str,
    model: str = "linear",
    threshold: float = 0.5,
    train_fraction: float = 0.7,
    seed: int = 0,
    explanation: bool = False,
    min_samples: int = 30,
    gbt: GBTSettings | None = None,
    tracer: Tracer | None = None,
    _threshold_mask: np.ndarray | None = None,
) -> EdgeModelResult:
    """Train and evaluate one edge's model (§5.1 linear / §5.2 nonlinear).

    Parameters
    ----------
    explanation:
        If True, include Nflt (the 16-feature Figures 9/12 view); the
        default 15-feature view is the prediction model.
    tracer:
        Optional :class:`~repro.obs.Tracer`; the prepare/train/eval
        stages emit nested spans.
    """
    if model not in ("linear", "gbt"):
        raise ValueError(f"model must be 'linear' or 'gbt', got {model!r}")
    names = EXPLANATION_FEATURE_NAMES if explanation else FEATURE_NAMES
    with _span(tracer, "pipeline.fit_edge", src=src, dst=dst, model=model):
        mask = (
            _threshold_mask
            if _threshold_mask is not None
            else threshold_mask(features.store, threshold)
        )
        rows = _filtered_edge_rows(features, src, dst, threshold, mask)
        if rows.size < min_samples:
            raise ValueError(
                f"edge {src}->{dst}: only {rows.size} transfers above the "
                f"{threshold:.1f}*Rmax filter (need {min_samples})"
            )
        with _span(tracer, "pipeline.prepare", rows=int(rows.size)):
            tr, te = train_test_split(rows.size, train_fraction, rng=seed)
            X, y, kept = _prepare_edge_data(features, rows, names, tr)
            scaler = StandardScaler().fit(X[tr])
            X_tr = scaler.transform(X[tr])
            X_te = scaler.transform(X[te])

        significance = np.full(len(names), np.nan)
        with _span(tracer, "pipeline.train", n_train=int(tr.size)):
            if model == "linear":
                fitted = LinearRegression().fit(X_tr, y[tr])
                sig_kept = np.abs(fitted.coef_)
            else:
                fitted = (gbt or GBTSettings()).build(seed).fit(X_tr, y[tr])
                sig_kept = fitted.feature_importances("gain")
            significance[kept] = sig_kept

        with _span(tracer, "pipeline.eval", n_test=int(te.size)):
            pred = fitted.predict(X_te)
            errors = absolute_percentage_errors(y[te], pred)

    return EdgeModelResult(
        src=src,
        dst=dst,
        model_kind=model,
        feature_names=names,
        kept=kept,
        significance=significance,
        n_train=int(tr.size),
        n_test=int(te.size),
        test_errors=errors,
        mdape=float(np.median(errors)),
        model=fitted,
        scaler=scaler,
    )


def edge_result_to_payload(result: EdgeModelResult) -> dict:
    """A strict-JSON document for one fitted edge (no NaN tokens: the
    NaN holes in ``significance`` map to null).  The round-trip through
    :func:`edge_result_from_payload` is exact — ``repr``-based JSON float
    encoding preserves every float64 bit — which is what lets cached and
    freshly fitted results be byte-identical."""
    return {
        "src": result.src,
        "dst": result.dst,
        "model_kind": result.model_kind,
        "feature_names": list(result.feature_names),
        "kept": [bool(k) for k in result.kept],
        "significance": [
            None if math.isnan(v) else float(v) for v in result.significance
        ],
        "n_train": result.n_train,
        "n_test": result.n_test,
        "test_errors": [float(e) for e in result.test_errors],
        "mdape": result.mdape,
        "model": model_to_dict(result.model),
        "scaler": model_to_dict(result.scaler),
    }


def edge_result_from_payload(payload: dict) -> EdgeModelResult:
    """Inverse of :func:`edge_result_to_payload`."""
    return EdgeModelResult(
        src=payload["src"],
        dst=payload["dst"],
        model_kind=payload["model_kind"],
        feature_names=tuple(payload["feature_names"]),
        kept=np.array(payload["kept"], dtype=bool),
        significance=np.array(
            [math.nan if v is None else v for v in payload["significance"]],
            dtype=np.float64,
        ),
        n_train=int(payload["n_train"]),
        n_test=int(payload["n_test"]),
        test_errors=np.array(payload["test_errors"], dtype=np.float64),
        mdape=float(payload["mdape"]),
        model=model_from_dict(payload["model"]),
        scaler=model_from_dict(payload["scaler"]),
    )


def edge_results_fingerprint(results: list[EdgeModelResult]) -> str:
    """Hex SHA-256 over the canonical payloads of ``results`` — the
    parity probe used by the determinism tests and ``repro-tools bench``
    (workers=1 vs N, cache hit vs cold build)."""
    docs = [edge_result_to_payload(r) for r in results]
    encoded = json.dumps(docs, sort_keys=True, allow_nan=False)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _edge_models_config(
    model: str,
    threshold: float,
    train_fraction: float,
    seed: int,
    explanation: bool,
    gbt: GBTSettings | None,
) -> dict:
    """Everything besides the store that shapes a per-edge fit — the
    config half of the cache fingerprint."""
    config = {
        "version": EDGE_MODEL_VERSION,
        "model": model,
        "threshold": threshold,
        "train_fraction": train_fraction,
        "seed": seed,
        "explanation": explanation,
    }
    if model == "gbt":
        config["gbt"] = dataclasses.asdict(gbt or GBTSettings())
    return config


# Threshold masks recomputed per (manifest, threshold) once per worker
# process, not once per task.
_TASK_MASKS: dict[tuple[str, float], np.ndarray] = {}


def _fit_edge_task(task: dict) -> dict:
    """Top-level worker task: fit one edge against the shared mmap scratch
    matrix and return the result as its exact-round-trip payload."""
    from repro.exec.scratch import load_feature_matrix

    features = load_feature_matrix(task["manifest"])
    threshold = float(task["config"]["threshold"])
    mask_key = (task["manifest"], threshold)
    mask = _TASK_MASKS.get(mask_key)
    if mask is None:
        mask = threshold_mask(features.store, threshold)
        _TASK_MASKS[mask_key] = mask
    gbt_params = task["config"].get("gbt")
    result = fit_edge_model(
        features,
        task["src"],
        task["dst"],
        model=task["config"]["model"],
        threshold=task["config"]["threshold"],
        train_fraction=task["config"]["train_fraction"],
        seed=task["config"]["seed"],
        explanation=task["config"]["explanation"],
        gbt=GBTSettings(**gbt_params) if gbt_params else None,
        _threshold_mask=mask,
    )
    return edge_result_to_payload(result)


def _fit_missing_edges(
    features: FeatureMatrix,
    edges: list[tuple[str, str]],
    config: dict,
    gbt: GBTSettings | None,
    tracer: Tracer | None,
    workers: int,
    registry=None,
) -> list[EdgeModelResult]:
    if workers <= 1 or len(edges) <= 1:
        mask = threshold_mask(features.store, config["threshold"])
        return [
            fit_edge_model(
                features,
                s,
                d,
                model=config["model"],
                threshold=config["threshold"],
                train_fraction=config["train_fraction"],
                seed=config["seed"],
                explanation=config["explanation"],
                gbt=gbt,
                tracer=tracer,
                _threshold_mask=mask,
            )
            for s, d in edges
        ]
    from repro.exec.engine import parallel_map
    from repro.exec.scratch import write_feature_matrix

    with tempfile.TemporaryDirectory(prefix="repro-exec-") as tmp:
        manifest = str(write_feature_matrix(features, tmp))
        tasks = [
            {"manifest": manifest, "src": s, "dst": d, "config": config}
            for s, d in edges
        ]
        payloads = parallel_map(
            _fit_edge_task,
            tasks,
            workers=workers,
            label="fit_edge",
            registry=registry,
            tracer=tracer,
        )
    return [edge_result_from_payload(p) for p in payloads]


def fit_all_edge_models(
    features: FeatureMatrix,
    edges: list[tuple[str, str]],
    model: str = "linear",
    threshold: float = 0.5,
    train_fraction: float = 0.7,
    seed: int = 0,
    explanation: bool = False,
    gbt: GBTSettings | None = None,
    tracer: Tracer | None = None,
    workers: int | None = None,
    cache=None,
    registry=None,
) -> list[EdgeModelResult]:
    """Per-edge models over a list of edges (shared threshold mask).

    ``workers`` (default: the ``REPRO_WORKERS`` environment variable,
    else 1) fans the per-edge fits out over worker processes via
    :func:`repro.exec.parallel_map`; the feature matrix is shared through
    memory-mapped scratch files, and results are bit-identical to the
    serial path for any worker count.  ``cache`` (an
    :class:`repro.exec.ArtifactCache`) memoizes each edge's fitted bundle
    keyed by the store fingerprint + fit configuration, so repeated
    experiments over the same log skip the fit entirely.
    """
    from repro.exec.engine import resolve_workers

    workers = resolve_workers(workers)
    config = _edge_models_config(
        model, threshold, train_fraction, seed, explanation, gbt
    )
    with _span(tracer, "pipeline.fit_all_edges", edges=len(edges),
               workers=workers):
        results: dict[int, EdgeModelResult] = {}
        missing = list(range(len(edges)))
        keys: dict[int, str] = {}
        if cache is not None:
            from repro.exec.cache import (
                combine_fingerprints,
                fingerprint_config,
                fingerprint_store,
            )

            store_fp = fingerprint_store(features.store)
            config_fp = fingerprint_config(config)
            missing = []
            for i, (s, d) in enumerate(edges):
                keys[i] = combine_fingerprints(store_fp, config_fp, f"{s}->{d}")
                payload = cache.get_json("edge_model", keys[i])
                if payload is not None:
                    results[i] = edge_result_from_payload(payload)
                else:
                    missing.append(i)
        if missing:
            fitted = _fit_missing_edges(
                features,
                [edges[i] for i in missing],
                config,
                gbt,
                tracer,
                workers,
                registry=registry,
            )
            for i, result in zip(missing, fitted):
                results[i] = result
                if cache is not None:
                    cache.put_json(
                        "edge_model", keys[i], edge_result_to_payload(result)
                    )
        return [results[i] for i in range(len(edges))]


def fit_global_model(
    features: FeatureMatrix,
    edges: list[tuple[str, str]],
    model: str = "linear",
    threshold: float = 0.5,
    train_fraction: float = 0.7,
    seed: int = 0,
    gbt: GBTSettings | None = None,
    include_rtt: bool = False,
    tracer: Tracer | None = None,
) -> GlobalModelResult:
    """The §5.4 single model for all edges (Eq. 5/6).

    Pools the filtered transfers of every edge, adds the source's ROmax and
    the destination's RImax as two extra features (estimated from training
    rows only to avoid leakage), and fits one model.

    ``include_rtt=True`` implements the paper's stated future work — "we
    will incorporate round-trip times for each edge, which we expect to
    reduce errors further" — by adding the edge's great-circle distance
    (the paper's own RTT proxy) as a feature.
    """
    if model not in ("linear", "gbt"):
        raise ValueError(f"model must be 'linear' or 'gbt', got {model!r}")
    with _span(tracer, "pipeline.fit_global", edges=len(edges), model=model):
        mask = threshold_mask(features.store, threshold)
        row_list = [
            _filtered_edge_rows(features, s, d, threshold, mask) for s, d in edges
        ]
        rows = np.sort(np.concatenate([r for r in row_list if r.size]))
        if rows.size < 10:
            raise ValueError("too few pooled transfers for a global model")

        with _span(tracer, "pipeline.prepare", rows=int(rows.size)):
            X_base = features.matrix(FEATURE_NAMES, rows)
            y = features.y[rows]

            tr, te = train_test_split(rows.size, train_fraction, rng=seed)
            # Capability features from training transfers only.
            train_features = features.subset(rows[tr])
            caps = estimate_endpoint_capabilities(train_features)
            pooled = features.subset(rows)
            ro, ri = capability_columns(pooled, caps)

            extra_cols = [ro, ri]
            names = FEATURE_NAMES + ("ROmax_src", "RImax_dst")
            if include_rtt:
                extra_cols.append(features.store.column("distance_km")[rows])
                names = names + ("distance_km",)
            X = np.column_stack([X_base, *extra_cols])

            eliminated = low_variance_features(X[tr], threshold=0.05)
            kept = ~eliminated
            scaler = StandardScaler().fit(X[tr][:, kept])
            X_tr = scaler.transform(X[tr][:, kept])
            X_te = scaler.transform(X[te][:, kept])

        with _span(tracer, "pipeline.train", n_train=int(tr.size)):
            if model == "linear":
                fitted = LinearRegression().fit(X_tr, y[tr])
            else:
                fitted = (gbt or GBTSettings()).build(seed).fit(X_tr, y[tr])

        with _span(tracer, "pipeline.eval", n_test=int(te.size)):
            pred = fitted.predict(X_te)
            errors = absolute_percentage_errors(y[te], pred)
    return GlobalModelResult(
        model_kind=model,
        feature_names=tuple(np.array(names)[kept]),
        n_train=int(tr.size),
        n_test=int(te.size),
        test_errors=errors,
        mdape=float(np.median(errors)),
        model=fitted,
        scaler=scaler,
    )
