"""The ``repro-tools bench`` suite: hot-path timings + the parity gate.

Runs the same hot paths as ``benchmarks/test_bench_perf.py`` (feature
engineering, overlap index, GBT train/predict, linear regression, max-min
allocation, the fluid simulator) plus bulk log ingestion and serve-bench,
then the two checks that gate CI:

- ``fit_all_edge_models`` at workers=1 vs workers=N must produce
  *bit-identical* model artifacts (compared via
  :func:`~repro.core.pipeline.edge_results_fingerprint`);
- a warm feature-matrix cache must return the cold build's exact arrays;
- the vectorized (C, P) sweep (:class:`~repro.serve.SweepAdvisor`) must
  rank bit-identically to the scalar
  :class:`~repro.core.advisor.TunableAdvisor` on a fitted model, and the
  fleet scheduler's predicted makespan must not exceed FIFO's;
- the flattened forest kernel (:class:`~repro.ml.forest.FlattenedForest`)
  must predict bit-identically to the per-tree reference loop, and the
  fused training histogram kernel must grow the exact trees the legacy
  per-feature kernel grows (SHA-256 prediction fingerprints);
- the group-by contention engine must emit the exact feature arrays the
  legacy per-endpoint engine emits, for full and subset computes.

Timings are reported (median/p95/best per path, serial-vs-parallel
wall-clock for the fit) but never gated — wall-clock depends on the host
core count; correctness does not.  The report lands in
``BENCH_perf.json`` via :mod:`repro.atomicio`.
"""

from __future__ import annotations

import math
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.atomicio import atomic_write_json
from repro.core.features import build_feature_matrix
from repro.core.pipeline import (
    edge_results_fingerprint,
    fit_all_edge_models,
    select_heavy_edges,
)
from repro.exec.cache import ArtifactCache, cached_build_feature_matrix
from repro.exec.engine import resolve_workers
from repro.logs.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.logs.schema import TransferLogRecord
from repro.logs.store import LogStore
from repro.obs.metrics import MetricsRegistry

__all__ = ["BenchReport", "run_bench", "write_report"]


def _make_store(
    n: int, n_endpoints: int = 8, seed: int = 0, horizon: float = 50_000.0
) -> LogStore:
    """The standard synthetic log (same recipe as the test fixtures)."""
    rng = np.random.default_rng(seed)
    eps = [f"EP{i}" for i in range(n_endpoints)]
    recs = []
    for i in range(n):
        src, dst = rng.choice(eps, size=2, replace=False)
        ts = float(rng.uniform(0, horizon))
        dur = float(rng.uniform(5, 500))
        nf = int(rng.integers(1, 200))
        recs.append(
            TransferLogRecord(
                transfer_id=i,
                src=str(src),
                dst=str(dst),
                src_site=str(src),
                dst_site=str(dst),
                src_type="GCS",
                dst_type="GCS",
                ts=ts,
                te=ts + dur,
                nb=float(rng.uniform(1e6, 1e12)),
                nf=nf,
                nd=max(1, nf // 40),
                c=int(rng.choice([2, 4])),
                p=int(rng.choice([4, 8])),
                nflt=int(rng.integers(0, 3)),
                distance_km=float(rng.uniform(10, 9000)),
            )
        )
    return LogStore.from_records(recs)


def _array_fingerprint(*arrays: np.ndarray) -> str:
    """SHA-256 over exact array bytes (dtype + shape + raw data) — any
    least-significant-bit difference in any array changes the digest."""
    import hashlib

    h = hashlib.sha256()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def _timed(fn, rounds: int) -> dict:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "median_s": float(np.median(times)),
        "p95_s": float(np.percentile(times, 95)),
        "best_s": float(min(times)),
        "rounds": rounds,
    }


@dataclass
class BenchReport:
    """Everything ``repro-tools bench`` measured and checked."""

    quick: bool
    workers: int
    hot_paths: dict = field(default_factory=dict)
    fit_all: dict = field(default_factory=dict)
    feature_cache: dict = field(default_factory=dict)
    serve_bench: dict = field(default_factory=dict)
    advise: dict = field(default_factory=dict)
    shards: dict = field(default_factory=dict)
    forest: dict = field(default_factory=dict)
    contention: dict = field(default_factory=dict)

    @property
    def parity_ok(self) -> bool:
        # The shards section gates correctness only (bit parity + exact
        # count merge); its recorded scaling depends on host cores and is
        # never gated — same policy as every other timing here.
        return bool(
            self.fit_all.get("parity_ok")
            and self.feature_cache.get("parity_ok")
            and self.advise.get("parity_ok")
            and self.advise.get("planner_ok")
            and self.shards.get("parity_ok", True)
            and self.forest.get("parity_ok", True)
            and self.contention.get("parity_ok", True)
        )

    def as_dict(self) -> dict:
        return {
            "benchmark": "repro-tools bench",
            "quick": self.quick,
            "workers": self.workers,
            "parity_ok": self.parity_ok,
            "hot_paths": self.hot_paths,
            "fit_all_edge_models": self.fit_all,
            "feature_cache": self.feature_cache,
            "serve_bench": self.serve_bench,
            "advise": self.advise,
            "shards": self.shards,
            "forest": self.forest,
            "contention_groupby": self.contention,
        }

    def render(self) -> str:
        lines = [
            f"bench ({'quick' if self.quick else 'full'}, "
            f"workers={self.workers})",
            "",
            f"{'hot path':<28}{'median':>12}{'p95':>12}{'best':>12}",
        ]
        for name, t in self.hot_paths.items():
            lines.append(
                f"{name:<28}{t['median_s'] * 1e3:>10.2f}ms"
                f"{t['p95_s'] * 1e3:>10.2f}ms{t['best_s'] * 1e3:>10.2f}ms"
            )
        fit = self.fit_all
        if fit:
            lines += [
                "",
                f"fit_all_edge_models ({fit['n_edges']} edges, "
                f"{fit['model']}):",
                f"  serial (workers=1)      {fit['serial_s'] * 1e3:9.2f} ms",
                f"  parallel (workers={fit['workers']})   "
                f"{fit['parallel_s'] * 1e3:9.2f} ms",
                f"  speedup                 {fit['speedup']:9.2f}x",
                f"  artifacts bit-identical {fit['parity_ok']}",
            ]
        cache = self.feature_cache
        if cache:
            lines += [
                "",
                "feature-matrix cache:",
                f"  cold build              {cache['cold_s'] * 1e3:9.2f} ms",
                f"  warm load               {cache['warm_s'] * 1e3:9.2f} ms",
                f"  speedup                 {cache['speedup']:9.2f}x",
                f"  hits / misses           {cache['hits']} / {cache['misses']}",
                f"  arrays bit-identical    {cache['parity_ok']}",
            ]
        fo = self.forest
        if fo:
            lines += [
                "",
                f"forest kernel ({fo['n_trees']} trees, "
                f"{fo['n_rows_full']}x{fo['n_features']} full / "
                f"{fo['n_rows_request']} request rows):",
                f"  predict full  loop      {fo['loop_full_s'] * 1e3:9.2f} ms",
                f"  predict full  kernel    {fo['flat_full_s'] * 1e3:9.2f} ms "
                f"({fo['full_speedup']:.1f}x)",
                f"  predict req.  loop      {fo['loop_request_s'] * 1e3:9.2f} ms",
                f"  predict req.  kernel    {fo['flat_request_s'] * 1e3:9.2f} ms "
                f"({fo['request_speedup']:.1f}x)",
                f"  train legacy kernel     {fo['train_legacy_s'] * 1e3:9.2f} ms",
                f"  train fused kernel      {fo['train_fused_s'] * 1e3:9.2f} ms "
                f"({fo['train_speedup']:.1f}x, "
                f"rmse ratio {fo['train_rmse_ratio']:.4f})",
                f"  kernel bit-ident. loop  {fo['parity_ok']}",
            ]
        co = self.contention
        if co:
            lines += [
                "",
                f"contention engine ({co['n_rows']} rows, "
                f"{co['n_endpoints']} endpoints):",
                f"  legacy build+compute    {co['legacy_s'] * 1e3:9.2f} ms",
                f"  groupby build+compute   {co['groupby_s'] * 1e3:9.2f} ms",
                f"  speedup                 {co['speedup']:9.2f}x",
                f"  features bit-identical  {co['parity_ok']}",
            ]
        sb = self.serve_bench
        if sb:
            lines += [
                "",
                "serve-bench:",
                f"  batch predict           {sb['batch_time_s'] * 1e3:9.2f} ms "
                f"({sb['batch_throughput_rps']:,.0f} req/s)",
                f"  batch-vs-loop speedup   {sb['speedup']:9.1f}x",
                f"  max |batch - loop|      {sb['max_abs_diff']:9.3g} B/s",
            ]
            single = sb.get("single_request")
            if single:
                lines.append(
                    f"  1-req p50/p95/p99       "
                    f"{single['p50_s'] * 1e3:.3f} / "
                    f"{single['p95_s'] * 1e3:.3f} / "
                    f"{single['p99_s'] * 1e3:.3f} ms "
                    f"@ {single['n_active']} active "
                    f"(sub-ms p99: {single['sub_ms_p99']})"
                )
        sh = self.shards
        if sh:
            lines += [
                "",
                f"sharded serving tier (cores={sh['cores']}):",
            ]
            for count, r in sorted(sh.get("results", {}).items(),
                                   key=lambda kv: int(kv[0])):
                lines.append(
                    f"  shards={count:<3} cluster      "
                    f"{r['cluster_time_s'] * 1e3:9.2f} ms "
                    f"({r['cluster_throughput_rps']:,.0f} req/s)  "
                    f"max diff {r['max_abs_diff']:g}  "
                    f"counts {'exact' if r['counts_ok'] else 'MISMATCH'}"
                )
            lines += [
                f"  scaling {sh['scaling_baseline_shards']}->"
                f"{sh['scaling_at_shards']} shards "
                f"{sh['scaling']:9.2f}x (target {sh['scaling_target']:g}x, "
                f"recorded, not gated)",
                f"  parity (bit + counts)   {sh['parity_ok']}",
            ]
        adv = self.advise
        if adv:
            lines += [
                "",
                f"advise ({adv['candidates']} candidates, "
                f"{adv['n_active']} active):",
                f"  scalar sweep            {adv['scalar_s'] * 1e3:9.2f} ms",
                f"  vectorized sweep        {adv['vector_s'] * 1e3:9.2f} ms",
                f"  speedup                 {adv['speedup']:9.2f}x",
                f"  ranking bit-identical   {adv['parity_ok']}",
                f"  planner makespan        {adv['planner_makespan_s']:9.1f} s",
                f"  fifo makespan           {adv['fifo_makespan_s']:9.1f} s",
                f"  greedy makespan         {adv['greedy_makespan_s']:9.1f} s",
                f"  planner <= fifo         {adv['planner_ok']}",
            ]
        lines += ["", f"parity_ok: {self.parity_ok}"]
        return "\n".join(lines)


def _run_hot_paths(report: BenchReport, rounds: int, quick: bool,
                   seed: int) -> None:
    from repro.core.contention import IntervalOverlapIndex
    from repro.ml.gbt import GradientBoostingRegressor
    from repro.ml.linear import LinearRegression
    from repro.sim import TransferRequest, TransferService, build_esnet_testbed
    from repro.sim.allocation import FlowSpec, Resource, allocate_maxmin
    from repro.sim.units import GB

    n_store = 1200 if quick else 5000
    store = _make_store(n_store, n_endpoints=12, seed=seed, horizon=500_000.0)
    report.hot_paths["feature_matrix_build"] = _timed(
        lambda: build_feature_matrix(store), rounds
    )

    rng = np.random.default_rng(seed)
    n_idx = 5_000 if quick else 20_000
    ts = rng.uniform(0, 1e6, n_idx)
    te = ts + rng.uniform(1, 1000, n_idx)
    w = rng.uniform(0, 1e9, n_idx)
    idx = IntervalOverlapIndex(ts, te, w)
    a = rng.uniform(0, 1e6, n_idx // 4)
    b = a + rng.uniform(1, 1000, n_idx // 4)
    report.hot_paths["overlap_index_queries"] = _timed(
        lambda: idx.overlap_sum(a, b), rounds
    )

    n_gbt = 800 if quick else 3000
    trees = 20 if quick else 100
    X = rng.uniform(size=(n_gbt, 15))
    y = np.sin(4 * X[:, 0]) + X[:, 1] * X[:, 2] + rng.normal(0, 0.05, n_gbt)
    report.hot_paths["gbt_training"] = _timed(
        lambda: GradientBoostingRegressor(
            n_estimators=trees, max_depth=4, random_state=0
        ).fit(X, y),
        rounds,
    )
    gbt_model = GradientBoostingRegressor(
        n_estimators=trees, max_depth=4, random_state=0
    ).fit(X, y)
    X_test = rng.uniform(size=(2_000 if quick else 10_000, 15))
    report.hot_paths["gbt_prediction"] = _timed(
        lambda: gbt_model.predict(X_test), rounds
    )

    n_lin = 3_000 if quick else 10_000
    X_lin = rng.normal(size=(n_lin, 15))
    y_lin = X_lin @ rng.uniform(size=15) + rng.normal(size=n_lin)
    report.hot_paths["linear_regression"] = _timed(
        lambda: LinearRegression().fit(X_lin, y_lin), rounds
    )

    resources = [
        Resource(f"r{i}", float(rng.uniform(1e8, 1e10))) for i in range(60)
    ]
    flows = []
    for j in range(40):
        picks = rng.choice(60, size=5, replace=False)
        flows.append(
            FlowSpec(
                f"f{j}",
                tuple(f"r{i}" for i in picks),
                weight=float(rng.uniform(1, 32)),
                rate_cap=float(rng.uniform(1e7, 1e9)),
            )
        )
    report.hot_paths["maxmin_allocation"] = _timed(
        lambda: allocate_maxmin(resources, flows), rounds
    )

    def run_sim():
        svc = TransferService(build_esnet_testbed(), seed=0)
        for i in range(20 if quick else 100):
            svc.submit(
                TransferRequest(
                    src="ANL-DTN", dst="BNL-DTN", total_bytes=20 * GB,
                    n_files=10, submit_time=i * 20.0,
                )
            )
        return svc.run()

    report.hot_paths["simulation_throughput"] = _timed(run_sim, rounds)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        csv_path = Path(tmp) / "bench.log.csv"
        jsonl_path = Path(tmp) / "bench.log.jsonl"
        write_csv(store, csv_path)
        write_jsonl(store, jsonl_path)
        report.hot_paths["csv_ingest"] = _timed(
            lambda: read_csv(csv_path), rounds
        )
        report.hot_paths["jsonl_ingest"] = _timed(
            lambda: read_jsonl(jsonl_path), rounds
        )


def _run_forest_bench(report: BenchReport, rounds: int, quick: bool,
                      seed: int) -> None:
    """Flattened-forest + fused-training parity and head-to-head timings.

    The bit-identity gate: ``predict`` (flattened kernel) must match
    ``predict_tree_loop`` (per-tree reference) exactly, on both the full
    test shape and a request-sized batch (the serving regime, where
    per-tree python dispatch dominates the loop).

    The fused-vs-legacy *training* kernels optimise the same gain
    objective but their histogram sums round differently at the ulp level
    (global vs per-feature cumsum, sibling subtraction), so grown trees
    may differ on exact gain ties — see :mod:`repro.ml.tree`.  Their
    train-RMSE equivalence is recorded (``train_rmse_ratio``) but only
    sanity-bounded, never bit-gated.
    """
    from repro.ml.gbt import GradientBoostingRegressor

    rng = np.random.default_rng(seed + 7)
    n = 800 if quick else 3000
    trees = 20 if quick else 100
    n_features = 15
    X = rng.uniform(size=(n, n_features))
    y = np.sin(4 * X[:, 0]) + X[:, 1] * X[:, 2] + rng.normal(0, 0.05, n)

    def make(kernel: str) -> GradientBoostingRegressor:
        return GradientBoostingRegressor(
            n_estimators=trees, max_depth=4, random_state=0,
            tree_kernel=kernel,
        )

    train_rounds = max(1, rounds - 2)
    fused_t = _timed(lambda: make("fused").fit(X, y), train_rounds)
    legacy_t = _timed(lambda: make("legacy").fit(X, y), train_rounds)
    fused = make("fused").fit(X, y)
    legacy = make("legacy").fit(X, y)

    X_full = rng.uniform(size=(2_000 if quick else 10_000, n_features))
    X_request = X_full[:100]

    flat_full = fused.predict(X_full)
    loop_full = fused.predict_tree_loop(X_full)
    flat_request = fused.predict(X_request)
    loop_request = fused.predict_tree_loop(X_request)

    flat_fp = _array_fingerprint(flat_full, flat_request)
    loop_fp = _array_fingerprint(loop_full, loop_request)
    # Training-kernel equivalence is statistical, not bitwise: both must
    # reach the same accuracy on the training objective (within 2%).
    fused_rmse = fused.train_scores_[-1]
    legacy_rmse = legacy.train_scores_[-1]
    rmse_ratio = fused_rmse / legacy_rmse if legacy_rmse else float("inf")
    train_equiv = bool(abs(rmse_ratio - 1.0) < 0.02)

    flat_full_t = _timed(lambda: fused.predict(X_full), rounds)
    loop_full_t = _timed(lambda: fused.predict_tree_loop(X_full), rounds)
    flat_req_t = _timed(lambda: fused.predict(X_request), rounds)
    loop_req_t = _timed(lambda: fused.predict_tree_loop(X_request), rounds)

    report.forest = {
        "n_trees": len(fused.trees_),
        "n_features": n_features,
        "n_rows_full": int(X_full.shape[0]),
        "n_rows_request": int(X_request.shape[0]),
        "flat_full_s": flat_full_t["median_s"],
        "loop_full_s": loop_full_t["median_s"],
        "full_speedup": (
            loop_full_t["median_s"] / flat_full_t["median_s"]
            if flat_full_t["median_s"] else 0.0
        ),
        "flat_request_s": flat_req_t["median_s"],
        "loop_request_s": loop_req_t["median_s"],
        "request_speedup": (
            loop_req_t["median_s"] / flat_req_t["median_s"]
            if flat_req_t["median_s"] else 0.0
        ),
        "train_fused_s": fused_t["median_s"],
        "train_legacy_s": legacy_t["median_s"],
        "train_speedup": (
            legacy_t["median_s"] / fused_t["median_s"]
            if fused_t["median_s"] else 0.0
        ),
        "flat_fingerprint": flat_fp,
        "loop_fingerprint": loop_fp,
        "train_rmse_ratio": float(rmse_ratio),
        "train_equiv_ok": train_equiv,
        "parity_ok": bool(flat_fp == loop_fp and train_equiv),
    }


def _run_contention_bench(report: BenchReport, rounds: int, quick: bool,
                          seed: int) -> None:
    """Group-by vs legacy contention engine: exact parity + speedup.

    Both engines build their per-endpoint indexes and run one full
    feature compute per round; the group-by engine's feature arrays must
    be bit-identical to the legacy engine's on the full store *and* on a
    random subset (the incremental-refit path)."""
    from repro.core.contention import _FEATURE_KEYS, ContentionComputer

    # Full mode runs at a scale where the legacy row loop's python
    # overhead dominates; the speedup keeps widening with row count.
    n = 2_000 if quick else 30_000
    n_endpoints = 12
    store = _make_store(n, n_endpoints=n_endpoints, seed=seed + 3,
                        horizon=500_000.0)
    rng = np.random.default_rng(seed + 4)
    subset = np.sort(rng.choice(n, size=n // 3, replace=False))

    legacy = ContentionComputer(store, engine="legacy")
    groupby = ContentionComputer(store, engine="groupby")
    legacy_full = legacy.compute()
    groupby_full = groupby.compute()
    legacy_sub = legacy.compute(subset)
    groupby_sub = groupby.compute(subset)

    legacy_fp = _array_fingerprint(*(legacy_full[k] for k in _FEATURE_KEYS))
    groupby_fp = _array_fingerprint(*(groupby_full[k] for k in _FEATURE_KEYS))
    subset_ok = all(
        np.array_equal(legacy_sub[k], groupby_sub[k]) for k in _FEATURE_KEYS
    )

    legacy_t = _timed(
        lambda: ContentionComputer(store, engine="legacy").compute(), rounds
    )
    groupby_t = _timed(
        lambda: ContentionComputer(store, engine="groupby").compute(), rounds
    )

    report.contention = {
        "n_rows": n,
        "n_endpoints": n_endpoints,
        "legacy_s": legacy_t["median_s"],
        "groupby_s": groupby_t["median_s"],
        "speedup": (
            legacy_t["median_s"] / groupby_t["median_s"]
            if groupby_t["median_s"] else 0.0
        ),
        "legacy_fingerprint": legacy_fp,
        "groupby_fingerprint": groupby_fp,
        "subset_parity_ok": bool(subset_ok),
        "parity_ok": bool(legacy_fp == groupby_fp and subset_ok),
    }


def _run_fit_parity(report: BenchReport, workers: int, quick: bool,
                    seed: int) -> None:
    n = 2500 if quick else 6000
    store = _make_store(n, n_endpoints=5, seed=seed)
    features = build_feature_matrix(store)
    edges = select_heavy_edges(store, min_samples=60, threshold=0.0)
    model = "gbt"

    start = time.perf_counter()
    serial = fit_all_edge_models(
        features, edges, model=model, threshold=0.0, seed=seed, workers=1
    )
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = fit_all_edge_models(
        features, edges, model=model, threshold=0.0, seed=seed, workers=workers
    )
    parallel_s = time.perf_counter() - start

    serial_fp = edge_results_fingerprint(serial)
    parallel_fp = edge_results_fingerprint(parallel)
    report.fit_all = {
        "n_edges": len(edges),
        "model": model,
        "workers": workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else 0.0,
        "fingerprint": serial_fp,
        "parity_ok": serial_fp == parallel_fp,
    }


def _run_cache_bench(report: BenchReport, quick: bool, seed: int) -> None:
    n = 2500 if quick else 6000
    store = _make_store(n, n_endpoints=5, seed=seed + 1)
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ArtifactCache(tmp, registry=registry)
        start = time.perf_counter()
        cold = cached_build_feature_matrix(store, cache=cache)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = cached_build_feature_matrix(store, cache=cache)
        warm_s = time.perf_counter() - start
    parity = (
        np.array_equal(cold.y, warm.y)
        and sorted(cold.columns) == sorted(warm.columns)
        and all(
            np.array_equal(cold.columns[k], warm.columns[k])
            for k in cold.columns
        )
    )
    flat = registry.flat()
    report.feature_cache = {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s else 0.0,
        "hits": flat.get('cache_hits_total{kind="feature_matrix"}', 0.0),
        "misses": flat.get('cache_misses_total{kind="feature_matrix"}', 0.0),
        "parity_ok": bool(parity),
    }


def _run_serve_bench(report: BenchReport, workers: int, quick: bool,
                     seed: int) -> None:
    from repro.serve.bench import (
        measure_single_request_latency,
        run_serve_bench,
    )

    n_active = 2_000 if quick else 10_000
    result = run_serve_bench(
        n_active=n_active,
        n_requests=200 if quick else 1_000,
        n_endpoints=20,
        seed=seed,
        repeats=2,
        workers=workers,
    )
    single = measure_single_request_latency(
        n_active=n_active,
        n_probe=100 if quick else 300,
        n_endpoints=20,
        seed=seed,
    )
    overhead = result.overhead_pct
    report.serve_bench = {
        "n_active": result.n_active,
        "n_requests": result.n_requests,
        "repeats": result.repeats,
        "workers": workers,
        "batch_time_s": result.batch_time_s,
        "loop_time_s": result.loop_time_s,
        "speedup": result.speedup,
        "batch_throughput_rps": result.batch_throughput_rps,
        "max_abs_diff": result.max_abs_diff,
        "latency_p99_s": result.latency_p99_s,
        "instrumented_time_s": result.instrumented_time_s,
        # The obs stack (tracer + registry + events + flight checks) must
        # stay under 5% of p99 serve time; NaN (no instrumented timing)
        # counts as ok because there is nothing to compare.
        "obs_overhead_pct": overhead,
        "obs_overhead_ok": bool(not math.isfinite(overhead) or overhead < 5.0),
        # Interactive regime: one request per predict_batch call against
        # the full active set — the sub-ms p99 target of the zero-realloc
        # fix-point.  Recorded (and self-assessed) but never CI-gated:
        # wall-clock depends on the runner.
        "single_request": single,
    }


def _sweep_fingerprint(ranked: list[tuple[int, int, float]]) -> str:
    """SHA-256 over the ranked (C, P, rate) triples, rate as exact hex —
    any reordering or least-significant-bit rate change alters it."""
    import hashlib

    h = hashlib.sha256()
    for c, p, rate in ranked:
        h.update(f"{c},{p},{float(rate).hex()};".encode())
    return h.hexdigest()


def _run_advise_bench(report: BenchReport, rounds: int, quick: bool,
                      seed: int) -> None:
    from repro.core.advisor import TunableAdvisor
    from repro.core.online import OnlineFeatureEstimator
    from repro.core.pipeline import fit_edge_model
    from repro.serve import ActiveSet, FallbackChain, FleetScheduler, SweepAdvisor
    from repro.sim.gridftp import TransferRequest

    n = 1500 if quick else 4000
    store = _make_store(n, n_endpoints=5, seed=seed + 2)
    features = build_feature_matrix(store)
    edges = select_heavy_edges(store, min_samples=60, threshold=0.0)
    src, dst = edges[0]
    result = fit_edge_model(
        features, src, dst, model="gbt", threshold=0.0, seed=seed
    )
    now = 25_000.0
    request = TransferRequest(
        src=src, dst=dst, total_bytes=50e9, n_files=120, n_dirs=4,
        concurrency=2, parallelism=4,
    )

    # Parity: the scalar reference sweep vs the single-batch vectorized
    # sweep (unclipped, same model, same active window) must produce the
    # same ranked (C, P, rate) list bit for bit.
    estimator = OnlineFeatureEstimator.from_log_window(store, now=now)
    scalar_advisor = TunableAdvisor(result, estimator)
    active = ActiveSet.from_log_window(store, now=now)
    vector_advisor = SweepAdvisor(result, active, clip=False)

    scalar_rec = scalar_advisor.recommend(request, now=now)
    vector_rec = vector_advisor.recommend(request, now=now)
    scalar_fp = _sweep_fingerprint(list(scalar_rec.alternatives))
    vector_fp = _sweep_fingerprint([
        (a.concurrency, a.parallelism, a.predicted_rate)
        for a in vector_rec.alternatives
    ])

    scalar_t = _timed(lambda: scalar_advisor.recommend(request, now=now),
                      rounds)
    vector_t = _timed(lambda: vector_advisor.recommend(request, now=now),
                      rounds)

    # Scheduler benchmark: planner vs naive-greedy vs FIFO on a synthetic
    # backlog over the log's busiest edges, on top of the live window.
    chain = FallbackChain.from_log(store, edge_models={(src, dst): result})
    scheduler = FleetScheduler(chain, max_active_per_endpoint=4)
    backlog_edges = edges[:4] if len(edges) >= 4 else edges
    backlog = [
        TransferRequest(
            src=backlog_edges[i % len(backlog_edges)][0],
            dst=backlog_edges[i % len(backlog_edges)][1],
            total_bytes=20e9, n_files=50, n_dirs=2,
            concurrency=2, parallelism=4,
        )
        for i in range(8 if quick else 24)
    ]
    bench = scheduler.benchmark(backlog, active=active, now=now)

    report.advise = {
        "candidates": len(scalar_advisor.grid),
        "n_active": len(active),
        "edge": f"{src}->{dst}",
        "scalar_s": scalar_t["median_s"],
        "vector_s": vector_t["median_s"],
        "speedup": (
            scalar_t["median_s"] / vector_t["median_s"]
            if vector_t["median_s"] else 0.0
        ),
        "scalar_fingerprint": scalar_fp,
        "vector_fingerprint": vector_fp,
        "parity_ok": scalar_fp == vector_fp,
        "backlog": len(backlog),
        "planner_makespan_s": bench.plans["planner"].makespan,
        "greedy_makespan_s": bench.plans["greedy"].makespan,
        "fifo_makespan_s": bench.plans["fifo"].makespan,
        "planner_ok": bench.planner_no_worse_than_fifo,
    }


def _run_shard_bench(report: BenchReport, quick: bool, seed: int) -> None:
    from repro.serve.shard import run_shard_scaling

    report.shards = run_shard_scaling(
        shard_counts=(1, 2) if quick else (1, 4),
        n_active=500 if quick else 2_000,
        n_requests=128 if quick else 512,
        n_endpoints=24,
        seed=seed,
        repeats=2 if quick else 3,
    )


def run_bench(
    quick: bool = False,
    workers: int | None = None,
    rounds: int | None = None,
    seed: int = 0,
) -> BenchReport:
    """Run the full bench suite; the returned report's :attr:`parity_ok`
    is the CI gate (timings are informational)."""
    worker_count = resolve_workers(workers)
    if worker_count == 1:
        # The parity check is the point of the suite: compare against a
        # real multi-worker run even when the caller didn't ask for one.
        worker_count = 4
    rounds = rounds if rounds is not None else (3 if quick else 5)
    report = BenchReport(quick=quick, workers=worker_count)
    _run_hot_paths(report, rounds, quick, seed)
    _run_forest_bench(report, rounds, quick, seed)
    _run_contention_bench(report, rounds, quick, seed)
    _run_fit_parity(report, worker_count, quick, seed)
    _run_cache_bench(report, quick, seed)
    _run_serve_bench(report, worker_count, quick, seed)
    _run_advise_bench(report, rounds, quick, seed)
    _run_shard_bench(report, quick, seed)
    return report


def write_report(report: BenchReport, path: str | Path) -> None:
    """Write the report as ``BENCH_perf.json`` (atomic, strict JSON)."""
    atomic_write_json(path, report.as_dict(), indent=2)
