"""Shared retry/backoff policy for transient-failure loops.

Two consumers with the same needs grew the same code independently: the
streaming tail (:class:`~repro.serve.stream.TailIngester`) backing off
between failed reads of a flaky filesystem, and the shard router backing
off between failed requests to a worker that may be mid-restart.  Both
want exponential growth with *deterministic* jitter — a fleet of
processes built from the same seed must neither thundering-herd a
recovering resource nor diverge between a live run and its replay.

:class:`BackoffPolicy` is exactly the tail's original delay formula,
extracted::

    backoff = min(base_s * 2**(failures - 1), max_s)
    delay   = max(floor_s, backoff * (1 + jitter * rng.random()))

with ``rng = random.Random(seed)`` consumed only while failing (zero
consecutive failures returns ``floor_s`` without touching the RNG), so
the extraction is bit-identical to the code it replaced.

:func:`retry_call` wraps the policy into the common call-until-it-works
loop with a max-attempt bound and an on-retry callback for counters and
events.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["BackoffPolicy", "retry_call"]


@dataclass
class BackoffPolicy:
    """Deterministically jittered exponential backoff.

    Parameters mirror the tail ingester's knobs: ``base_s`` doubles per
    consecutive failure up to ``max_s``; ``jitter`` spreads the result
    over ``[delay, delay * (1 + jitter)]`` using a private
    ``random.Random(seed)`` stream, so two policies with the same seed
    produce the same delays in the same order.
    """

    base_s: float = 0.05
    max_s: float = 5.0
    jitter: float = 0.25
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError("base_s must be > 0")
        if self.max_s < self.base_s:
            raise ValueError("max_s must be >= base_s")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        self._rng = random.Random(self.seed)

    def delay(self, failures: int, floor_s: float = 0.0) -> float:
        """Sleep before the next attempt after ``failures`` consecutive
        failures; ``floor_s`` is the healthy-path interval the delay
        never drops below.  Zero failures is the healthy path: return
        ``floor_s`` without consuming jitter randomness."""
        if failures <= 0:
            return float(floor_s)
        backoff = min(self.base_s * (2.0 ** (failures - 1)), self.max_s)
        return max(float(floor_s),
                   backoff * (1.0 + self.jitter * self._rng.random()))


def retry_call(
    fn: Callable,
    max_attempts: int = 3,
    policy: BackoffPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn()`` until it returns, retrying ``retry_on`` exceptions.

    At most ``max_attempts`` calls are made; the final failure re-raises
    the original exception.  Before each retry the policy's delay for
    the current failure run is computed, ``on_retry(attempt, exc,
    delay)`` is invoked (for counters/events), and ``sleep(delay)``
    waits it out — inject a no-op ``sleep`` in tests.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retry_on as exc:
            if attempt >= max_attempts:
                raise
            delay = policy.delay(attempt) if policy is not None else 0.0
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
