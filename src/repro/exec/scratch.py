"""Memory-mapped scratch files: ship a FeatureMatrix to worker processes.

Pickling a 15-column float matrix plus the structured log array into every
task would serialize the same megabytes once per edge.  Instead the parent
writes the matrix once (``store.npy`` / ``y.npy`` / ``columns.npy`` +
``manifest.json``, all through :mod:`repro.atomicio` so a crashed parent
never leaves a torn scratch file), and each worker ``np.load``s the arrays
with ``mmap_mode="r"`` — the OS page cache shares the physical memory
across every worker on the machine.

Workers keep a per-process cache keyed by manifest path, so a pool worker
that executes many tasks against the same matrix opens it once.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from repro.atomicio import atomic_write_bytes, atomic_write_json
from repro.core.features import FeatureMatrix
from repro.logs.store import LogStore

__all__ = ["write_feature_matrix", "load_feature_matrix", "clear_process_cache"]

_MANIFEST_VERSION = 1

# One FeatureMatrix per manifest path per process (worker processes are
# long-lived across tasks; reopening the mmap per task would be waste).
_PROCESS_CACHE: dict[str, FeatureMatrix] = {}


def _save_array(path: Path, arr: np.ndarray) -> None:
    buf = io.BytesIO()
    np.save(buf, np.ascontiguousarray(arr), allow_pickle=False)
    # Scratch files are transient: skip the fsync, keep the atomic rename
    # (a torn .npy would fail parsing in every worker at once).
    atomic_write_bytes(path, buf.getvalue(), fsync=False)


def write_feature_matrix(features: FeatureMatrix, directory: str | Path) -> Path:
    """Write ``features`` as mmap-friendly scratch files; returns the
    manifest path to hand to workers."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names = sorted(features.columns)
    _save_array(directory / "store.npy", features.store.raw())
    _save_array(directory / "y.npy", features.y)
    _save_array(
        directory / "columns.npy",
        np.stack([features.columns[n] for n in names]),
    )
    manifest = directory / "manifest.json"
    atomic_write_json(
        manifest,
        {
            "version": _MANIFEST_VERSION,
            "columns": names,
            "n_rows": len(features),
        },
        fsync=False,
    )
    return manifest


def load_feature_matrix(
    manifest_path: str | Path, mmap: bool = True
) -> FeatureMatrix:
    """Open a scratch matrix written by :func:`write_feature_matrix`.

    With ``mmap=True`` (default) the arrays are read-only memory maps —
    cheap to open in every worker, shared through the page cache.  Results
    are cached per process by resolved manifest path.
    """
    manifest_path = Path(manifest_path).resolve()
    key = str(manifest_path)
    cached = _PROCESS_CACHE.get(key)
    if cached is not None:
        return cached
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("version") != _MANIFEST_VERSION:
        raise ValueError(
            f"unsupported scratch manifest version in {manifest_path}"
        )
    directory = manifest_path.parent
    mode = "r" if mmap else None
    raw = np.load(directory / "store.npy", mmap_mode=mode, allow_pickle=False)
    y = np.load(directory / "y.npy", mmap_mode=mode, allow_pickle=False)
    cols = np.load(directory / "columns.npy", mmap_mode=mode, allow_pickle=False)
    columns = {name: cols[i] for i, name in enumerate(manifest["columns"])}
    features = FeatureMatrix(store=LogStore(raw), columns=columns, y=y)
    _PROCESS_CACHE[key] = features
    return features


def clear_process_cache() -> None:
    """Drop the per-process manifest cache (tests, or before deleting
    scratch directories that might be re-created at the same path)."""
    _PROCESS_CACHE.clear()
