"""Deterministic process-pool fan-out: :func:`parallel_map`.

Design constraints, in order:

- **determinism**: results come back in submission order regardless of
  completion order, and ``workers=1`` is a plain in-order loop — no pool,
  no pickling — so a serial run is bit-identical to code that never heard
  of this module.  Anything a task needs beyond its item (seeds included)
  must be derived deterministically; :func:`derive_seed` folds a base
  seed and arbitrary task labels through SHA-256 for that.
- **crash containment**: a worker that dies (OOM kill, segfault,
  ``os._exit``) poisons its ``ProcessPoolExecutor``.  Tasks whose results
  were lost are retried serially in the parent, counted in
  ``exec_worker_crashes_total`` / ``exec_serial_retries_total`` — a fleet
  of fits should degrade to slow, not to dead.
- **error fidelity**: an exception *raised by the task function* is not a
  crash.  It is captured in the worker with its traceback text and
  re-raised in the parent with its original type (lowest task index
  first, matching what a serial loop would have raised).  Exceptions that
  do not survive pickling are wrapped in :class:`TaskError`.
- **deadline containment**: an optional per-task ``timeout`` cancels a
  task that exceeds its wall-clock budget *inside the worker* (SIGALRM,
  where the platform has it), so one hung fit cannot stall a whole
  retrain fan-out.  The cancelled task surfaces as :class:`TaskTimeout`
  and is counted in ``exec_timeout_total``; it is *not* retried serially
  (a hung task would hang the parent too).  With
  ``return_exceptions=True`` failed tasks — timeouts included — come
  back as exception objects in their slot instead of aborting the whole
  map, which is what a supervisor scheduling independent per-edge refits
  wants.

Worker count resolution (:func:`resolve_workers`): explicit argument,
else the ``REPRO_WORKERS`` environment variable, else 1.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import threading
import time
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterable

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, exponential_buckets
from repro.obs.tracing import NULL_SPAN, Tracer

__all__ = [
    "resolve_workers",
    "derive_seed",
    "parallel_map",
    "timeout_enforceable",
    "TaskError",
    "TaskTimeout",
]

# 1 ms .. ~17 min: spans one edge fit through a full-study experiment.
_TASK_BUCKETS = exponential_buckets(1e-3, 2.0, 20)


class TaskError(RuntimeError):
    """A task raised an exception that could not be pickled back to the
    parent; the message carries the original type and traceback text."""


class TaskTimeout(TaskError):
    """A task exceeded its per-task ``timeout`` and was cancelled at the
    deadline (inside the worker on platforms with SIGALRM)."""


def timeout_enforceable() -> bool:
    """Whether :func:`_deadline` can actually enforce a timeout *here*:
    only in a process's main thread, and only on platforms with
    ``SIGALRM``.  Anywhere else a requested deadline is silently
    best-effort-unenforced."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


# One warning per process: a caller that schedules thousands of tasks
# from a worker thread should not get thousands of identical events.
_timeout_unavailable_warned = False


def _warn_timeout_unavailable(
    label: str,
    registry: MetricsRegistry | None,
    events: EventLog | None,
) -> None:
    global _timeout_unavailable_warned
    if _timeout_unavailable_warned:
        return
    _timeout_unavailable_warned = True
    if registry is not None:
        registry.counter(
            "exec_timeout_unavailable_total",
            "Task deadlines requested where SIGALRM enforcement is "
            "impossible (non-main thread or platform without SIGALRM).",
        ).inc()
    if events is not None:
        events.emit(
            "exec", "timeout_unavailable", severity="warning",
            label=label,
            has_sigalrm=hasattr(signal, "SIGALRM"),
            main_thread=(
                threading.current_thread() is threading.main_thread()
            ),
        )


@contextmanager
def _deadline(timeout: float | None):
    """Raise :class:`TaskTimeout` from the enclosed block after
    ``timeout`` seconds.

    Enforcement uses ``SIGALRM``/``setitimer``, which only works in a
    process's main thread and only on platforms that have it; anywhere
    else the deadline is best-effort-unenforced (the task simply runs to
    completion).  The timer is always cleared on exit so no alarm can
    leak into unrelated code.
    """
    if (
        not timeout
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise TaskTimeout(f"task exceeded its {timeout:g}s deadline")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count: explicit ``workers`` if given, else the
    ``REPRO_WORKERS`` environment variable, else 1 (pure serial)."""
    if workers is not None:
        count = int(workers)
    else:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        count = int(env) if env else 1
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {count}")
    return count


def derive_seed(base_seed: int, *parts) -> int:
    """A per-task seed derived from ``base_seed`` and any number of task
    labels — stable across processes and platforms (SHA-256, not
    ``hash()``), distinct for distinct label tuples, always in
    ``[0, 2**63)`` so it fits every RNG constructor."""
    payload = json.dumps(
        [int(base_seed), *[str(p) for p in parts]], separators=(",", ":")
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _span(tracer: Tracer | None, name: str, **attrs):
    if tracer is None or not tracer.enabled:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def _count_tasks(registry: MetricsRegistry | None, label: str, mode: str,
                 n: int = 1) -> None:
    if registry is not None and n:
        registry.counter(
            "exec_tasks_total", "Tasks completed by the fan-out engine.",
            labels={"label": label, "mode": mode},
        ).inc(n)


def _observe_duration(registry: MetricsRegistry | None, label: str,
                      seconds: float) -> None:
    if registry is not None:
        registry.histogram(
            "exec_task_seconds", "Per-task wall-clock duration.",
            labels={"label": label}, bounds=_TASK_BUCKETS,
        ).observe(seconds)


def _run_task(payload: tuple) -> tuple:
    """Top-level worker wrapper (must be importable for pickling).

    Returns ``(status, index, value, traceback_text, duration_s)`` where
    status is ``"ok"``, ``"error"``, or ``"timeout"`` — task exceptions
    are *data*, not crashes, so one bad edge cannot poison the pool, and
    a task that blows its deadline is cancelled right here in the worker.
    """
    fn, item, index, timeout = payload
    start = time.perf_counter()
    try:
        with _deadline(timeout):
            value = fn(item)
        return ("ok", index, value, "", time.perf_counter() - start)
    except TaskTimeout as exc:
        return ("timeout", index, exc, "", time.perf_counter() - start)
    except Exception as exc:
        tb = traceback.format_exc()
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:
            exc = TaskError(f"{type(exc).__name__}: {exc}\n{tb}")
        return ("error", index, exc, tb, time.perf_counter() - start)


def _count_timeout(registry: MetricsRegistry | None, label: str,
                   events: EventLog | None = None) -> None:
    if registry is not None:
        registry.counter(
            "exec_timeout_total",
            "Tasks cancelled at their per-task deadline.",
            labels={"label": label},
        ).inc()
    if events is not None:
        events.emit("exec", "task_timeout", severity="warning", label=label)


def _serial_map(
    fn: Callable,
    items: list,
    label: str,
    registry: MetricsRegistry | None,
    tracer: Tracer | None,
    mode: str = "serial",
    timeout: float | None = None,
    return_exceptions: bool = False,
    events: EventLog | None = None,
) -> list:
    """The workers=1 path: a plain loop, exceptions propagate at the first
    failing item exactly as unengined code would (unless
    ``return_exceptions`` captures them into their result slot)."""
    if timeout and not timeout_enforceable():
        _warn_timeout_unavailable(label, registry, events)
    out = []
    for i, item in enumerate(items):
        with _span(tracer, "exec.task", label=label, index=i):
            start = time.perf_counter()
            try:
                with _deadline(timeout):
                    out.append(fn(item))
            except TaskTimeout as exc:
                _count_timeout(registry, label, events)
                if not return_exceptions:
                    raise
                out.append(exc)
            except Exception as exc:
                if not return_exceptions:
                    raise
                out.append(exc)
            _observe_duration(registry, label, time.perf_counter() - start)
        _count_tasks(registry, label, mode)
    return out


def parallel_map(
    fn: Callable,
    items: Iterable,
    workers: int | None = None,
    label: str = "task",
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    timeout: float | None = None,
    return_exceptions: bool = False,
    events: EventLog | None = None,
) -> list:
    """``[fn(item) for item in items]``, fanned out over worker processes.

    Results are returned in input order.  With ``workers=1`` (or a single
    item) this is a plain serial loop.  With ``workers>1``, ``fn`` and
    every item must be picklable; tasks whose worker crashed are retried
    serially in the parent, and if any task raised, the exception of the
    lowest-index failing task is re-raised with its original type.

    ``timeout`` gives every task a wall-clock deadline, enforced inside
    the worker (see :func:`_deadline`); a task past its deadline fails
    with :class:`TaskTimeout` and is never retried serially.  With
    ``return_exceptions=True`` failing tasks (timeouts included) come
    back as exception objects in their result slot instead of raising,
    so independent tasks cannot abort each other.
    """
    items = list(items)
    count = resolve_workers(workers)
    if count <= 1 or len(items) <= 1:
        return _serial_map(fn, items, label, registry, tracer,
                           timeout=timeout,
                           return_exceptions=return_exceptions,
                           events=events)

    outcomes: dict[int, tuple] = {}
    crashes = 0
    with _span(tracer, "exec.parallel_map", label=label, tasks=len(items),
               workers=count) as span:
        try:
            with ProcessPoolExecutor(max_workers=min(count, len(items))) as pool:
                futures = [
                    pool.submit(_run_task, (fn, item, i, timeout))
                    for i, item in enumerate(items)
                ]
                for future in futures:
                    try:
                        status, index, value, tb, duration = future.result()
                    except BrokenExecutor:
                        crashes += 1
                        continue
                    except Exception:
                        # Result lost in transit (e.g. an unpicklable
                        # return value): recompute it in the parent.
                        crashes += 1
                        continue
                    outcomes[index] = (status, value, tb)
                    if status == "timeout":
                        _count_timeout(registry, label, events)
                    _observe_duration(registry, label, duration)
        except BrokenExecutor:
            crashes += 1

        completed = len(outcomes)
        _count_tasks(registry, label, "parallel", completed)
        retry = [i for i in range(len(items)) if i not in outcomes]
        if crashes:
            if registry is not None:
                registry.counter(
                    "exec_worker_crashes_total",
                    "Worker deaths / lost results observed by parallel_map.",
                    labels={"label": label},
                ).inc(crashes)
            if events is not None:
                events.emit("exec", "worker_crash", severity="error",
                            label=label, crashes=crashes)
        if retry:
            if registry is not None:
                registry.counter(
                    "exec_serial_retries_total",
                    "Tasks recomputed serially after a worker crash.",
                    labels={"label": label},
                ).inc(len(retry))
            if events is not None:
                events.emit("exec", "serial_retry", severity="warning",
                            label=label, tasks=len(retry))
            # Run the survivors in index order in the parent; a task
            # exception here propagates directly, like the serial path.
            recovered = _serial_map(
                fn, [items[i] for i in retry], label, registry, tracer,
                mode="serial-retry", timeout=timeout,
                return_exceptions=return_exceptions, events=events,
            )
            for i, value in zip(retry, recovered):
                status = "error" if isinstance(value, Exception) else "ok"
                outcomes[i] = (status, value, "")
        span.attrs["crashes"] = crashes

    if not return_exceptions:
        for i in range(len(items)):
            status, value, tb = outcomes[i]
            if status in ("error", "timeout"):
                raise value
    return [outcomes[i][1] for i in range(len(items))]
