"""Content-addressed artifact cache for feature matrices and model bundles.

Cache keys are *content fingerprints*, never timestamps or mtimes: the
SHA-256 of the log store's raw bytes (:func:`fingerprint_store`) combined
with the canonical JSON of whatever configuration shaped the artifact
(:func:`fingerprint_config`).  Mutate one row, one filter threshold, or
the feature config and the key changes — stale reuse is structurally
impossible, no invalidation protocol needed.

Entries are written through :mod:`repro.atomicio` (complete-or-absent)
and carry their own checksum; a corrupt entry is *quarantined* (renamed
``*.corrupt``) and treated as a miss, never loaded.  Hits, misses, stores
and quarantines are counted per artifact kind into ``cache_*`` metrics.

:func:`cached_build_feature_matrix` is the highest-leverage user: every
experiment that shares a log store reuses one Table 2 feature build.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from pathlib import Path

import numpy as np

from repro.atomicio import atomic_write_bytes, atomic_write_json, checksum_payload
from repro.core.features import (
    EXPLANATION_FEATURE_NAMES,
    FeatureMatrix,
    build_feature_matrix,
)
from repro.logs.store import LogStore
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ArtifactCache",
    "cached_build_feature_matrix",
    "fingerprint_store",
    "fingerprint_config",
    "combine_fingerprints",
    "default_cache_root",
    "FEATURE_MATRIX_VERSION",
]

# Bump when build_feature_matrix's semantics change: old cached matrices
# must stop matching.
FEATURE_MATRIX_VERSION = 1


def fingerprint_store(store: LogStore) -> str:
    """Hex SHA-256 over the store's dtype descriptor and raw bytes — any
    single-row (even single-byte) mutation changes it."""
    arr = np.ascontiguousarray(store.raw())
    h = hashlib.sha256()
    h.update(json.dumps(arr.dtype.descr).encode("utf-8"))
    h.update(str(arr.shape[0]).encode("utf-8"))
    h.update(arr.tobytes())
    return h.hexdigest()


def fingerprint_config(mapping: dict) -> str:
    """Hex SHA-256 of the canonical (sorted-keys) JSON of ``mapping``."""
    encoded = json.dumps(mapping, sort_keys=True, allow_nan=False)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def combine_fingerprints(*parts: str) -> str:
    """Fold several fingerprints into one key."""
    return hashlib.sha256(":".join(parts).encode("utf-8")).hexdigest()


def default_cache_root() -> Path:
    """The artifact-cache directory: ``REPRO_CACHE_DIR`` if set, else
    ``.cache/artifacts`` next to the repository root (the same ``.cache``
    the study cache uses)."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".cache" / "artifacts"


class ArtifactCache:
    """Content-addressed, checksum-verified, atomic on-disk cache.

    Layout: ``<root>/<kind>/<key>.json`` for JSON documents and
    ``<root>/<kind>/<key>.npz`` (+ ``.meta.json`` digest sidecar) for
    array bundles.  ``kind`` is a short artifact family name
    (``feature_matrix``, ``edge_model``) used as the metric label.
    """

    def __init__(
        self, root: str | Path, registry: MetricsRegistry | None = None
    ) -> None:
        self.root = Path(root)
        self.registry = registry

    # -- metrics -----------------------------------------------------------

    def _count(self, name: str, kind: str, help_text: str) -> None:
        if self.registry is not None:
            self.registry.counter(
                name, help_text, labels={"kind": kind}
            ).inc()

    def _hit(self, kind: str) -> None:
        self._count("cache_hits_total", kind, "Artifact-cache hits.")

    def _miss(self, kind: str) -> None:
        self._count("cache_misses_total", kind, "Artifact-cache misses.")

    def _stored(self, kind: str) -> None:
        self._count("cache_stores_total", kind, "Artifacts written.")

    def _corrupt(self, kind: str) -> None:
        self._count(
            "cache_corrupt_total", kind,
            "Corrupt artifacts quarantined instead of loaded.",
        )

    # -- paths -------------------------------------------------------------

    def _path(self, kind: str, key: str, suffix: str) -> Path:
        if not key or any(c in key for c in "/\\"):
            raise ValueError(f"bad cache key {key!r}")
        return self.root / kind / f"{key}{suffix}"

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a bad entry aside (never delete evidence, never re-read)."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    # -- JSON documents ----------------------------------------------------

    def put_json(self, kind: str, key: str, payload) -> None:
        """Store a JSON-compatible payload under ``(kind, key)``."""
        doc = {"kind": kind, "key": key, "payload": payload}
        doc["checksum"] = checksum_payload(doc)
        path = self._path(kind, key, ".json")
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, doc)
        self._stored(kind)

    def get_json(self, kind: str, key: str):
        """The payload stored under ``(kind, key)``, or None on a miss.
        A corrupt or tampered entry is quarantined and reported as a miss.
        """
        path = self._path(kind, key, ".json")
        if not path.exists():
            self._miss(kind)
            return None
        try:
            doc = json.loads(path.read_text())
            if (
                doc.get("kind") != kind
                or doc.get("key") != key
                or doc.get("checksum") != checksum_payload(doc)
            ):
                raise ValueError("checksum or identity mismatch")
            payload = doc["payload"]
        except (ValueError, KeyError, OSError):
            self._corrupt(kind)
            self._quarantine(path)
            self._miss(kind)
            return None
        self._hit(kind)
        return payload

    # -- array bundles -----------------------------------------------------

    def put_arrays(self, kind: str, key: str, arrays: dict[str, np.ndarray]) -> None:
        """Store a named-array bundle under ``(kind, key)`` (uncompressed
        NPZ + a digest sidecar for integrity)."""
        buf = io.BytesIO()
        np.savez(buf, **{n: np.ascontiguousarray(a) for n, a in arrays.items()})
        data = buf.getvalue()
        path = self._path(kind, key, ".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, data)
        atomic_write_json(
            self._path(kind, key, ".meta.json"),
            {
                "kind": kind,
                "key": key,
                "sha256": hashlib.sha256(data).hexdigest(),
                "names": sorted(arrays),
            },
        )
        self._stored(kind)

    def get_arrays(self, kind: str, key: str) -> dict[str, np.ndarray] | None:
        """The array bundle under ``(kind, key)``, or None.  The NPZ bytes
        must match the sidecar digest; anything off is quarantined."""
        path = self._path(kind, key, ".npz")
        meta_path = self._path(kind, key, ".meta.json")
        if not path.exists() or not meta_path.exists():
            self._miss(kind)
            return None
        try:
            meta = json.loads(meta_path.read_text())
            data = path.read_bytes()
            if (
                meta.get("kind") != kind
                or meta.get("key") != key
                or meta.get("sha256") != hashlib.sha256(data).hexdigest()
            ):
                raise ValueError("digest or identity mismatch")
            with np.load(io.BytesIO(data), allow_pickle=False) as npz:
                out = {name: npz[name] for name in npz.files}
            if sorted(out) != meta.get("names"):
                raise ValueError("array names mismatch")
        except (ValueError, KeyError, OSError, EOFError):
            self._corrupt(kind)
            self._quarantine(path)
            self._quarantine(meta_path)
            self._miss(kind)
            return None
        self._hit(kind)
        return out

    # -- maintenance -------------------------------------------------------

    def _entries(self):
        if not self.root.exists():
            return
        for kind_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for path in sorted(kind_dir.iterdir()):
                if path.is_file():
                    yield kind_dir.name, path

    def stats(self) -> dict:
        """Per-kind entry/byte totals plus quarantined-file counts."""
        kinds: dict[str, dict[str, int]] = {}
        for kind, path in self._entries():
            entry = kinds.setdefault(
                kind, {"files": 0, "bytes": 0, "corrupt": 0}
            )
            entry["files"] += 1
            entry["bytes"] += path.stat().st_size
            if path.name.endswith(".corrupt"):
                entry["corrupt"] += 1
        return {
            "root": str(self.root),
            "kinds": kinds,
            "total_files": sum(k["files"] for k in kinds.values()),
            "total_bytes": sum(k["bytes"] for k in kinds.values()),
        }

    def clear(self) -> int:
        """Delete every cache entry (quarantined files included); returns
        the number of files removed."""
        removed = 0
        for _, path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def feature_config_fingerprint() -> str:
    """Fingerprint of everything (besides the store) that shapes the
    feature matrix: the feature set and the builder version."""
    return fingerprint_config(
        {
            "version": FEATURE_MATRIX_VERSION,
            "features": list(EXPLANATION_FEATURE_NAMES),
        }
    )


def cached_build_feature_matrix(
    store: LogStore, cache: ArtifactCache | None = None
) -> FeatureMatrix:
    """:func:`~repro.core.features.build_feature_matrix`, memoized through
    ``cache`` (pass None to bypass caching entirely).

    The key is the store fingerprint combined with the feature-config
    fingerprint, so two experiments sharing a log store share one build,
    and any store or feature-set change forces a rebuild.
    """
    if cache is None:
        return build_feature_matrix(store)
    key = combine_fingerprints(fingerprint_store(store), feature_config_fingerprint())
    got = cache.get_arrays("feature_matrix", key)
    if got is not None:
        y = got.pop("__y__")
        return FeatureMatrix(store=store, columns=got, y=y)
    features = build_feature_matrix(store)
    arrays = dict(features.columns)
    arrays["__y__"] = features.y
    cache.put_arrays("feature_matrix", key, arrays)
    return features
