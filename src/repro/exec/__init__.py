"""Deterministic parallel execution + content-addressed artifact cache.

The training and harness workloads are embarrassingly parallel — per-edge
model fits, independent experiments, repeated benchmark cells — and they
recompute the same expensive artifacts (the Table 2 feature matrix, per-
edge model bundles) across runs.  This package supplies the two missing
pieces:

- :mod:`repro.exec.engine` — :func:`parallel_map`: ordered fan-out over a
  ``ProcessPoolExecutor`` with worker-crash capture and serial-fallback
  retry.  ``workers=1`` (the default, or ``REPRO_WORKERS=1``) is a plain
  in-order loop, so serial runs are bit-identical to the pre-engine code;
  ``workers=N`` must produce bit-identical artifacts, which the parity
  tests and ``repro-tools bench`` enforce.
- :mod:`repro.exec.retry` — :class:`BackoffPolicy` / :func:`retry_call`:
  the deterministically jittered exponential backoff shared by the
  streaming tail and the shard router (one formula, one seed discipline,
  no thundering herds).
- :mod:`repro.exec.scratch` — memory-mapped scratch files for shipping a
  :class:`~repro.core.features.FeatureMatrix` to worker processes without
  pickling the arrays into every task.
- :mod:`repro.exec.cache` — :class:`ArtifactCache`: a content-addressed
  on-disk cache (SHA-256 fingerprints over the log arrays + config) for
  feature matrices and model bundles, written through
  :mod:`repro.atomicio` and checksum-verified on read.
- :mod:`repro.exec.bench` — the ``repro-tools bench`` suite: hot-path
  timings plus the workers=1-vs-N parity check, written to
  ``BENCH_perf.json``.

See ``docs/performance.md`` for the worker model and determinism contract.
"""

from __future__ import annotations

from repro.exec.cache import (
    ArtifactCache,
    cached_build_feature_matrix,
    combine_fingerprints,
    default_cache_root,
    fingerprint_config,
    fingerprint_store,
)
from repro.exec.engine import (
    TaskError,
    TaskTimeout,
    derive_seed,
    parallel_map,
    resolve_workers,
    timeout_enforceable,
)
from repro.exec.retry import BackoffPolicy, retry_call
from repro.exec.scratch import (
    clear_process_cache,
    load_feature_matrix,
    write_feature_matrix,
)

__all__ = [
    "parallel_map",
    "resolve_workers",
    "derive_seed",
    "TaskError",
    "TaskTimeout",
    "timeout_enforceable",
    "BackoffPolicy",
    "retry_call",
    "ArtifactCache",
    "cached_build_feature_matrix",
    "fingerprint_store",
    "fingerprint_config",
    "combine_fingerprints",
    "default_cache_root",
    "write_feature_matrix",
    "load_feature_matrix",
    "clear_process_cache",
]
