"""Per-edge workload specification and request-stream generation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.gridftp import TransferRequest
from repro.workload.distributions import (
    DatasetShapeSampler,
    DiurnalPoissonArrivals,
    TunableSampler,
)

__all__ = ["EdgeWorkload", "generate_requests"]


@dataclass(frozen=True)
class EdgeWorkload:
    """A stream of transfer requests over one edge.

    Attributes
    ----------
    src, dst:
        Endpoint names.
    arrivals:
        Arrival process.
    shapes:
        Dataset shape sampler.
    tunables:
        C/P sampler.
    tag:
        Tag stamped on every generated request.
    """

    src: str
    dst: str
    arrivals: DiurnalPoissonArrivals
    shapes: DatasetShapeSampler = field(default_factory=DatasetShapeSampler)
    tunables: TunableSampler = field(default_factory=TunableSampler)
    tag: str = ""

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("src and dst must differ")

    def generate(
        self, duration_s: float, rng: np.random.Generator
    ) -> list[TransferRequest]:
        """Sample this edge's requests over [0, duration_s)."""
        out = []
        for t in self.arrivals.sample(duration_s, rng):
            total, nf, nd = self.shapes.sample(rng)
            c, p = self.tunables.sample(rng)
            out.append(
                TransferRequest(
                    src=self.src,
                    dst=self.dst,
                    total_bytes=total,
                    n_files=nf,
                    n_dirs=nd,
                    concurrency=c,
                    parallelism=p,
                    submit_time=float(t),
                    tag=self.tag,
                )
            )
        return out


def generate_requests(
    workloads: list[EdgeWorkload],
    duration_s: float,
    rng: np.random.Generator | int | None = None,
) -> list[TransferRequest]:
    """Generate the merged, time-sorted request stream of many edges."""
    if duration_s <= 0:
        raise ValueError("duration must be > 0")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    requests: list[TransferRequest] = []
    for wl in workloads:
        requests.extend(wl.generate(duration_s, rng))
    requests.sort(key=lambda r: r.submit_time)
    return requests
