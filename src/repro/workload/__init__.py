"""Synthetic transfer workload generation.

The Globus logs behind the paper span "transfer sizes ranging from 1 byte
to close to a petabyte and transfer rates from 0.1 bytes/second to a
gigabyte/second" (Figure 6), with heavy-tailed file counts (46.6 M files in
30,653 transfers) and per-user tunables that "do not vary greatly".  This
package samples transfer requests with those population properties:

- :mod:`~repro.workload.distributions` — log-normal file sizes, log-normal
  file counts with a point mass at 1, diurnally modulated Poisson arrivals;
- :mod:`~repro.workload.generator` — per-edge workload specs and request
  streams;
- :mod:`~repro.workload.datasets` — canned workloads for the §5 production
  study and the testbed experiments.
"""

from repro.workload.distributions import (
    DatasetShapeSampler,
    DiurnalPoissonArrivals,
    TunableSampler,
)
from repro.workload.generator import EdgeWorkload, generate_requests
from repro.workload.datasets import production_workload, single_edge_workload

__all__ = [
    "DatasetShapeSampler",
    "DiurnalPoissonArrivals",
    "TunableSampler",
    "EdgeWorkload",
    "generate_requests",
    "production_workload",
    "single_edge_workload",
]
