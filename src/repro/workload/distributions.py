"""Sampling distributions for transfer request populations.

Shapes are chosen to match what the paper reports about the Globus logs:

- **File sizes** are log-normal: science data spans KBs (metadata, small
  images) to TBs (simulation checkpoints).
- **File counts** mix a point mass at 1 (single-file transfers dominate the
  log: 36,599 of 46K edges saw exactly one transfer, and single-file
  datasets are common) with a log-normal bulk, giving heavy-tailed dataset
  sizes of 1 B .. ~1 PB once multiplied.
- **Directory counts** scale sub-linearly with file count.
- **Tunables** C and P sit at service defaults for almost all requests
  ("they do not vary greatly in the log data" — the Figure 9 red crosses).
- **Arrivals** follow a Poisson process with diurnal modulation via
  thinning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DatasetShapeSampler", "TunableSampler", "DiurnalPoissonArrivals"]

_MAX_TOTAL_BYTES = 1e15  # ~1 PB: the top of Figure 6's y-axis
_MIN_FILE_BYTES = 1.0


@dataclass(frozen=True)
class DatasetShapeSampler:
    """Samples (total_bytes, n_files, n_dirs) triples.

    Attributes
    ----------
    median_file_bytes:
        Median of the log-normal file-size distribution.
    file_sigma:
        Log-space sigma of file size (2.0 gives ~3 decades of spread).
    single_file_prob:
        Probability a transfer moves exactly one file.
    median_files:
        Median file count of multi-file transfers.
    files_sigma:
        Log-space sigma of the file count.
    max_files:
        Hard cap on files per transfer.
    files_per_dir:
        Mean files per directory for Nd derivation.
    max_total_bytes:
        Per-edge cap on dataset size (defaults to the global ~1 PB cap);
        workloads on personal endpoints use much smaller caps.
    tiny_prob:
        Probability of a degenerate "tiny" transfer — a single file of
        1 B .. ~10 KB (READMEs, manifests, fat-fingered paths).  The Globus
        log's size axis starts at literally one byte (Figure 6); these
        transfers are what populates its bottom decades, and their rates
        (bytes over a multi-second startup) populate the 0.1 B/s floor of
        the rate axis.
    """

    median_file_bytes: float = 50e6
    file_sigma: float = 2.0
    single_file_prob: float = 0.35
    median_files: float = 30.0
    files_sigma: float = 1.8
    max_files: int = 2_000_000
    files_per_dir: float = 40.0
    max_total_bytes: float = _MAX_TOTAL_BYTES
    tiny_prob: float = 0.02

    def __post_init__(self) -> None:
        if self.median_file_bytes <= 0:
            raise ValueError("median_file_bytes must be > 0")
        if self.max_total_bytes < 1:
            raise ValueError("max_total_bytes must be >= 1")
        if not 0.0 <= self.tiny_prob <= 1.0:
            raise ValueError("tiny_prob must be in [0, 1]")
        if not 0.0 <= self.single_file_prob <= 1.0:
            raise ValueError("single_file_prob must be in [0, 1]")
        if self.median_files < 1 or self.max_files < 1:
            raise ValueError("file counts must be >= 1")
        if self.files_per_dir <= 0:
            raise ValueError("files_per_dir must be > 0")

    def sample(self, rng: np.random.Generator) -> tuple[float, int, int]:
        """Draw one (total_bytes, n_files, n_dirs)."""
        if rng.uniform() < self.tiny_prob:
            # Log-uniform over 1 B .. 10 KB, single file.
            total = float(np.floor(10.0 ** rng.uniform(0.0, 4.0)))
            return max(total, 1.0), 1, 1
        if rng.uniform() < self.single_file_prob:
            n_files = 1
        else:
            n_files = int(
                min(
                    self.max_files,
                    max(2, round(rng.lognormal(np.log(self.median_files), self.files_sigma))),
                )
            )
        avg_file = max(
            _MIN_FILE_BYTES,
            rng.lognormal(np.log(self.median_file_bytes), self.file_sigma),
        )
        total = min(self.max_total_bytes, avg_file * n_files)
        total = max(total, float(n_files))  # at least 1 byte per file
        if n_files == 1:
            n_dirs = 1
        else:
            n_dirs = max(1, int(round(n_files / self.files_per_dir * rng.uniform(0.5, 1.5))))
        return float(total), n_files, n_dirs


@dataclass(frozen=True)
class TunableSampler:
    """Samples (concurrency, parallelism) pairs.

    Defaults dominate; a small fraction of power users override them.
    Low variance is deliberate — it is why the paper's models eliminate C
    and P as features on every edge.
    """

    default_c: int = 2
    default_p: int = 4
    override_prob: float = 0.06
    override_c_choices: tuple[int, ...] = (4, 8, 16)
    override_p_choices: tuple[int, ...] = (1, 2, 8)

    def __post_init__(self) -> None:
        if self.default_c < 1 or self.default_p < 1:
            raise ValueError("defaults must be >= 1")
        if not 0.0 <= self.override_prob <= 1.0:
            raise ValueError("override_prob must be in [0, 1]")

    def sample(self, rng: np.random.Generator) -> tuple[int, int]:
        if rng.uniform() < self.override_prob:
            return (
                int(rng.choice(self.override_c_choices)),
                int(rng.choice(self.override_p_choices)),
            )
        return self.default_c, self.default_p


@dataclass(frozen=True)
class DiurnalPoissonArrivals:
    """Poisson arrivals with a 24 h sinusoidal intensity, via thinning.

    Attributes
    ----------
    mean_per_hour:
        Time-averaged arrival rate.
    diurnal_amplitude:
        Relative swing in [0, 1): intensity(t) = mean * (1 + a*sin(...)).
    peak_hour:
        Local hour of maximum intensity.
    """

    mean_per_hour: float
    diurnal_amplitude: float = 0.5
    peak_hour: float = 14.0

    def __post_init__(self) -> None:
        if self.mean_per_hour <= 0:
            raise ValueError("mean_per_hour must be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")

    def intensity(self, t_s: float) -> float:
        """Instantaneous rate (per hour) at simulation time ``t_s``."""
        hour = (t_s / 3600.0) % 24.0
        phase = 2.0 * np.pi * (hour - self.peak_hour) / 24.0
        return self.mean_per_hour * (1.0 + self.diurnal_amplitude * np.cos(phase))

    def sample(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        """Arrival times in [0, duration_s), sorted."""
        if duration_s <= 0:
            raise ValueError("duration must be > 0")
        lam_max = self.mean_per_hour * (1.0 + self.diurnal_amplitude) / 3600.0
        # Homogeneous candidates then thin.
        n_cand = rng.poisson(lam_max * duration_s)
        times = np.sort(rng.uniform(0.0, duration_s, size=n_cand))
        keep = rng.uniform(size=n_cand) * lam_max <= np.array(
            [self.intensity(t) / 3600.0 for t in times]
        )
        return times[keep]
