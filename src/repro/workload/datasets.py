"""Canned workloads for the paper's experiments.

:func:`production_workload` builds the §5 study's request stream: 30 heavy
edges with per-edge intensities and dataset profiles spanning the paper's
per-edge sample counts (~100 .. ~4000 usable transfers), plus a sprinkling
of one-off transfers over random endpoint pairs so the "all edges" rows of
Tables 3 and 4 have a population to compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.endpoint import EndpointType
from repro.sim.fleet import PRODUCTION_EDGES
from repro.sim.gridftp import TransferRequest
from repro.sim.service import Fabric
from repro.sim.units import DAY, GB, HOUR, MB, TB
from repro.workload.distributions import (
    DatasetShapeSampler,
    DiurnalPoissonArrivals,
    TunableSampler,
)
from repro.workload.generator import EdgeWorkload, generate_requests

__all__ = ["production_workload", "single_edge_workload"]

# Per-edge arrival intensity (transfers/hour).  Chosen so per-edge raw
# counts over a multi-week window span the paper's range (Figure 11 shows
# 64 .. 4194 usable transfers per edge after the 0.5 Rmax filter).
_EDGE_RATE_PER_HOUR: dict[tuple[str, str], float] = {
    ("JLAB-DTN", "NERSC-DTN"): 13.0,       # the paper's busiest edge (~4200)
    ("TACC-DTN", "ALCF-DTN"): 8.0,
    ("TACC-DTN", "NERSC-Edison"): 6.0,
    ("SDSC-DTN", "TACC-DTN"): 5.0,
    ("NERSC-DTN", "JLAB-DTN"): 4.0,
    ("UCAR-DTN", "Colorado-DTN"): 4.0,
    ("FNAL-DTN", "ALCF-DTN"): 3.5,
    ("UChicago-DTN", "ALCF-DTN"): 3.0,
    ("Stanford-DTN", "NERSC-DTN"): 3.0,
    ("NCSA-DTN", "Purdue-DTN"): 2.5,
    ("ALCF-DTN", "ORNL-DTN"): 3.0,
    ("ORNL-DTN", "NERSC-DTN"): 2.8,
    ("BNL-DTN", "NCSA-DTN"): 2.5,
    ("NERSC-DTN", "ALCF-DTN"): 4.5,
    ("CERN-DTN", "BNL-DTN"): 2.5,
    ("DESY-DTN", "ALCF-DTN"): 2.2,
    ("SDSC-DTN", "Caltech-Laptop"): 2.5,
    ("NCSA-DTN", "Michigan-Workstation"): 2.2,
    ("ALCF-DTN", "Boulder-Laptop"): 2.4,
    ("TACC-DTN", "Chicago-Laptop"): 2.2,
    ("NERSC-DTN", "NYU-Laptop"): 2.0,
    ("ORNL-DTN", "Boulder-Laptop"): 2.0,
    ("ALCF-DTN", "NYU-Laptop"): 2.0,
    ("JLAB-DTN", "Chicago-Laptop"): 2.0,
    ("CERN-DTN", "Berkeley-Laptop"): 2.0,
    ("Boulder-Laptop", "UCAR-DTN"): 2.2,
    ("Berkeley-Laptop", "NERSC-DTN"): 2.5,
    ("Michigan-Workstation", "NCSA-DTN"): 2.0,
    ("Chicago-Laptop", "NERSC-DTN"): 2.0,
    ("Austin-Workstation", "ORNL-DTN"): 2.0,
}

# Dataset profiles keyed by (src is GCP, dst is GCP).  Sizes skew large:
# the paper's 30-edge training set averages ~67 GB/transfer (2,053 TB over
# 30,653 transfers), and the 0.5*Rmax filter keeps ~46.5% of raw data —
# achievable only if typical transfers amortise startup costs.
_SERVER_SHAPES = DatasetShapeSampler(
    median_file_bytes=200e6,
    file_sigma=1.8,
    single_file_prob=0.20,
    median_files=60.0,
    files_sigma=1.6,
    max_files=500_000,
    max_total_bytes=5 * TB,
)
# Small-file-heavy profile for the Figure 5 edge (JLAB experiments produce
# huge numbers of small event files).
_SMALL_FILE_SHAPES = DatasetShapeSampler(
    median_file_bytes=10e6,
    file_sigma=1.8,
    single_file_prob=0.05,
    median_files=500.0,
    files_sigma=1.6,
    max_files=1_000_000,
    max_total_bytes=2 * TB,
)
_PERSONAL_SHAPES = DatasetShapeSampler(
    median_file_bytes=20e6,
    file_sigma=1.6,
    single_file_prob=0.35,
    median_files=20.0,
    files_sigma=1.4,
    max_files=20_000,
    max_total_bytes=100 * GB,
)

# Per-edge tunable defaults: constant per edge (the paper eliminates C and
# P on every edge for low variance), but varying *across* edges so the
# global model sees them.
_EDGE_TUNABLES: dict[tuple[str, str], tuple[int, int]] = {
    ("JLAB-DTN", "NERSC-DTN"): (4, 4),
    ("CERN-DTN", "BNL-DTN"): (4, 8),
    ("DESY-DTN", "ALCF-DTN"): (4, 8),
    ("NERSC-DTN", "ALCF-DTN"): (4, 4),
}

_SMALL_FILE_EDGES = {("JLAB-DTN", "NERSC-DTN"), ("NERSC-DTN", "JLAB-DTN")}


def _shapes_for_edge(fabric: Fabric, src: str, dst: str) -> DatasetShapeSampler:
    if (src, dst) in _SMALL_FILE_EDGES:
        return _SMALL_FILE_SHAPES
    src_gcp = fabric.endpoint(src).etype == EndpointType.GCP
    dst_gcp = fabric.endpoint(dst).etype == EndpointType.GCP
    return _PERSONAL_SHAPES if (src_gcp or dst_gcp) else _SERVER_SHAPES


def production_workload(
    fabric: Fabric,
    duration_s: float = 21 * DAY,
    seed: int = 0,
    include_long_tail: bool = True,
) -> list[TransferRequest]:
    """The §5 request stream over the 30 heavy edges (plus a long tail).

    Parameters
    ----------
    fabric:
        The production fleet.
    duration_s:
        Arrival window; transfers arriving near the end still run to
        completion.
    seed:
        Workload RNG seed.
    include_long_tail:
        Also emit rare one-off transfers over random endpoint pairs, giving
        the "all edges" population of Tables 3-4.
    """
    rng = np.random.default_rng(seed)
    workloads = []
    for (src, dst) in PRODUCTION_EDGES:
        rate = _EDGE_RATE_PER_HOUR[(src, dst)]
        c, p = _EDGE_TUNABLES.get((src, dst), (2, 4))
        workloads.append(
            EdgeWorkload(
                src=src,
                dst=dst,
                arrivals=DiurnalPoissonArrivals(
                    mean_per_hour=rate,
                    diurnal_amplitude=0.5,
                    peak_hour=float(rng.uniform(10, 18)),
                ),
                shapes=_shapes_for_edge(fabric, src, dst),
                tunables=TunableSampler(
                    default_c=c, default_p=p, override_prob=0.0
                ),
                tag="prod",
            )
        )
    requests = generate_requests(workloads, duration_s, rng)

    if include_long_tail:
        requests.extend(_long_tail_requests(fabric, duration_s, rng))
        requests.sort(key=lambda r: r.submit_time)
    return requests


def _long_tail_requests(
    fabric: Fabric, duration_s: float, rng: np.random.Generator
) -> list[TransferRequest]:
    """One-off transfers over random endpoint pairs (the 36,599 single-
    transfer edges of §3.2, scaled down)."""
    names = sorted(fabric.endpoints)
    heavy = set(PRODUCTION_EDGES)
    n = max(1, int(duration_s / (2 * HOUR)))  # one every ~2 h
    out = []
    shapes = DatasetShapeSampler(
        median_file_bytes=30e6, max_total_bytes=1 * TB, max_files=50_000,
        tiny_prob=0.06,
    )
    tun = TunableSampler()
    for _ in range(n):
        src, dst = rng.choice(names, size=2, replace=False)
        if (str(src), str(dst)) in heavy:
            continue
        # One-off edges skew local in the real log (Table 3's all-edge
        # median is ~2,000 km, not the ~8,000 km of uniform global pairs):
        # accept with probability decaying in distance.
        dist = fabric.distance_km(str(src), str(dst))
        if rng.uniform() > 1.0 / (1.0 + dist / 1500.0):
            continue
        total, nf, nd = shapes.sample(rng)
        c, p = tun.sample(rng)
        out.append(
            TransferRequest(
                src=str(src),
                dst=str(dst),
                total_bytes=total,
                n_files=nf,
                n_dirs=nd,
                concurrency=c,
                parallelism=p,
                submit_time=float(rng.uniform(0.0, duration_s)),
                tag="tail",
            )
        )
    return out


def single_edge_workload(
    src: str,
    dst: str,
    duration_s: float,
    rate_per_hour: float,
    seed: int = 0,
    shapes: DatasetShapeSampler | None = None,
    tag: str = "",
) -> list[TransferRequest]:
    """Convenience builder for one edge's request stream."""
    rng = np.random.default_rng(seed)
    wl = EdgeWorkload(
        src=src,
        dst=dst,
        arrivals=DiurnalPoissonArrivals(mean_per_hour=rate_per_hour),
        shapes=shapes or _SERVER_SHAPES,
        tag=tag,
    )
    return generate_requests([wl], duration_s, rng)
