"""Regenerate Figure 3: rate vs relative external load on the testbed."""

import numpy as np

from repro.harness import exp_figure3


def test_bench_figure3(benchmark):
    result = benchmark.pedantic(
        exp_figure3.run, kwargs={"seed": 0, "n_per_edge": 100},
        rounds=1, iterations=1,
    )
    print("\n" + result.render())
    assert len(result.rows) == 4
    for row in result.rows:
        corr, load_at_max = row[3], row[4]
        # Rate declines with load...
        assert corr < -0.5
        # ...and the max-rate transfer happens at (near-)zero load on the
        # testbed, where Globus is the only load source.
        assert load_at_max < 0.1
