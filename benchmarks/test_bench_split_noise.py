"""Robustness bench: is the LR-vs-XGB gap bigger than split noise?

The paper compares models on a single 70/30 split.  This bench repeats the
split 8 times on the busiest edge and verifies that the Figure 11 verdict
survives: XGB wins on (nearly) every split and the two MdAPE
distributions separate cleanly.
"""

from conftest import MIN_SAMPLES

from repro.core.evaluation import compare_models
from repro.core.pipeline import GBTSettings, select_heavy_edges


def test_bench_split_noise(study, benchmark):
    edge = select_heavy_edges(
        study.log, min_samples=MIN_SAMPLES, threshold=0.5
    )[0]

    out = benchmark.pedantic(
        compare_models,
        args=(study.features, *edge),
        kwargs={"n_splits": 8, "gbt": GBTSettings(n_estimators=150)},
        rounds=1,
        iterations=1,
    )
    lin, gbt = out["linear"], out["gbt"]
    print(
        f"\n{edge[0]}->{edge[1]}: LR median {lin.median:.2f}% "
        f"(IQR {lin.iqr[0]:.2f}-{lin.iqr[1]:.2f}), "
        f"XGB median {gbt.median:.2f}% "
        f"(IQR {gbt.iqr[0]:.2f}-{gbt.iqr[1]:.2f}), "
        f"XGB win rate {out['gbt_win_rate']:.0%}, "
        f"IQRs separated: {out['iqr_separated']}"
    )
    assert out["gbt_win_rate"] >= 0.9
    assert out["iqr_separated"]
    # Split noise is small relative to the model gap.
    assert lin.median - gbt.median > max(lin.spread, gbt.spread)
