"""Extension bench: learning C/P from a calibration sweep (§8's lever)."""

import os

from repro.harness import exp_tunables


def test_bench_tunables(benchmark):
    n = 40 if os.environ.get("REPRO_FULL_STUDY") else 25
    result = benchmark.pedantic(
        exp_tunables.run, kwargs={"n_per_cell": n, "seed": 0},
        rounds=1, iterations=1,
    )
    print("\n" + result.render())
    m = result.metrics
    # With deliberate tunable variation, C and P survive elimination and
    # the advisor is confident.
    assert m["c_survived_elimination"] == 1.0
    assert m["p_survived_elimination"] == 1.0
    assert m["advisor_confident"] == 1.0
    # Its pick loses at most 15% of the true-best cell's rate.
    assert m["recommendation_regret"] < 0.15
    # Ground truth is physical: more streams pay on a long-RTT edge.
    rates = {(row[0], row[1]): row[3] for row in result.rows}
    assert rates[(4, 8)] > rates[(1, 4)] > rates[(1, 1)]
