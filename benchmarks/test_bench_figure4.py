"""Regenerate Figure 4: aggregate rate vs concurrency, Weibull fit."""

from repro.harness import exp_figure4


def test_bench_figure4(study, benchmark):
    result = benchmark.pedantic(
        exp_figure4.run, args=(study,), rounds=1, iterations=1
    )
    print("\n" + result.render())
    fitted = [row for row in result.rows if row[2] != "-"]
    assert fitted, "no endpoint produced enough concurrency levels"
    # The rise-then-fall signature: for most fitted endpoints, mean rate at
    # the high-concurrency end is below the peak.
    declining = [row for row in fitted if row[5] is True or row[5] == "yes"]
    assert len(declining) >= len(fitted) / 2
    # The Weibull mode lands at a plausible interior concurrency.
    for row in fitted:
        assert row[4] > 0.0
