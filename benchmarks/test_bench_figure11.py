"""Regenerate Figure 11: per-edge MdAPE, LR vs XGB (the headline numbers)."""

from conftest import MIN_SAMPLES

from repro.harness import exp_models


def test_bench_figure11(study, benchmark):
    result = benchmark.pedantic(
        exp_models.run_figure11,
        args=(study,),
        kwargs={"min_samples": MIN_SAMPLES},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    m = result.metrics
    # Paper: per-edge medians 7.0 % (LR) vs 4.6 % (XGB).  We require the
    # ordering and the single-digit XGB regime, not the exact numbers.
    assert m["median_mdape_xgb"] < m["median_mdape_linear"]
    assert m["median_mdape_xgb"] < 10.0
    assert m["median_mdape_linear"] < 40.0
    # XGB wins on the overwhelming majority of edges.
    assert m["xgb_win_fraction"] >= 0.8
