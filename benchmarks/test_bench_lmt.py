"""Regenerate §5.5.2: the LMT storage-monitoring study."""

import os

from repro.harness import exp_lmt


def test_bench_lmt(benchmark):
    n = 666 if os.environ.get("REPRO_FULL_STUDY") else 250
    result = benchmark.pedantic(
        exp_lmt.run, kwargs={"seed": 0, "n_test_transfers": n},
        rounds=1, iterations=1,
    )
    print("\n" + result.render())
    m = result.metrics
    # Paper: 95th-percentile error collapses from 9.29 % to 1.26 % when
    # the four LMT features expose the non-Globus storage load.  We require
    # a substantial improvement, not the exact numbers.
    assert m["p95_with_lmt"] < m["p95_base"]
    assert m["improvement_factor"] > 2.0
    # The monitored model's tail sits well inside the unmonitored one's;
    # the exact percentile depends on how often the unknown load flips
    # state mid-transfer (see EXPERIMENTS.md).
    assert m["p95_with_lmt"] < 25.0
