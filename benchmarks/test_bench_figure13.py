"""Regenerate Figure 13: MdAPE vs the Rmax threshold filter."""

import os

import numpy as np

from repro.harness import exp_figure13


def test_bench_figure13(study, benchmark):
    min_at_top = 300 if os.environ.get("REPRO_FULL_STUDY") else 60
    result = benchmark.pedantic(
        exp_figure13.run,
        args=(study,),
        kwargs={"min_samples_at_top": min_at_top},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    m = result.metrics
    assert m["n_edges"] >= 2
    # Errors generally decline as the threshold rises (0.8 vs 0.5).
    assert m["edges_declining"] >= 0.5 * m["n_edges"]
    # Sample counts shrink monotonically with the threshold.
    n_cols = [h for h in result.headers if h.startswith("n@")]
    for row in result.rows:
        counts = row[2 : 2 + len(n_cols)]
        assert counts == sorted(counts, reverse=True)
