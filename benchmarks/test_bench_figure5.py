"""Regenerate Figure 5: file characteristics vs performance."""

from repro.harness import exp_figure5


def test_bench_figure5(study, benchmark):
    result = benchmark.pedantic(
        exp_figure5.run, args=(study,), rounds=1, iterations=1
    )
    print("\n" + result.render())
    # Rate rises with total size across buckets...
    assert result.metrics["log_size_rate_correlation"] > 0.7
    # ...and big-file transfers beat small-file transfers within (almost
    # every) total-size bucket.
    assert result.metrics["big_file_win_fraction"] >= 0.8
