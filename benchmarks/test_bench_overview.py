"""Regenerate the §1-§2 log overview statistics."""

from repro.harness import exp_overview


def test_bench_overview(study, benchmark):
    result = benchmark.pedantic(
        exp_overview.run, args=(study,), rounds=1, iterations=1
    )
    print("\n" + result.render())
    m = result.metrics
    # The paper's dichotomy: most *bytes* move fast even when most
    # *transfers* are slow.
    assert m["bytes_over_100mbs_fraction"] > 0.5
    assert m["bytes_over_1gbs_fraction"] < m["bytes_over_100mbs_fraction"]
    # Edge funnel: a long tail of light edges around a heavy core.
    assert m["edges_total"] > m["edges_heavy"] >= 25
