"""Regenerate Figure 8: rate vs load on production edges (unknown load)."""

from repro.harness import exp_figure8


def test_bench_figure8(study, benchmark):
    result = benchmark.pedantic(
        exp_figure8.run, args=(study,), rounds=1, iterations=1
    )
    print("\n" + result.render())
    assert len(result.rows) == 4
    # The production fingerprint: unlike the testbed (Figure 3), on most
    # edges the max-rate transfer does NOT occur at the lowest known load,
    # and the load/rate correlation is much weaker than the testbed's ~-0.9.
    assert result.metrics["edges_with_max_at_nonzero_load"] >= 2
    for row in result.rows:
        corr = row[3]
        assert corr > -0.8  # murkier than the clean testbed relationship
