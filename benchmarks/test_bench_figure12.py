"""Regenerate Figure 12: XGB feature-importance grid (Nflt fades)."""

from conftest import MIN_SAMPLES

from repro.harness import exp_models


def test_bench_figure12(study, benchmark):
    lin = exp_models.run_figure9(study, min_samples=MIN_SAMPLES)
    result = benchmark.pedantic(
        exp_models.run_figure12,
        args=(study,),
        kwargs={"min_samples": MIN_SAMPLES},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    grid = result.series["grid"]
    assert {"C", "P"} <= set(grid.eliminated_everywhere())
    # §5.3: Nflt matters in the linear model but far less in the nonlinear
    # one (the trees absorb faults via nonlinear functions of load).
    nflt_linear = lin.metrics["nflt_mean_significance"]
    nflt_xgb = result.metrics["nflt_mean_significance"]
    assert nflt_xgb < nflt_linear
