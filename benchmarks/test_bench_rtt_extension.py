"""Future-work extension (§8): round-trip times in the global model.

The paper closes §5.4 with "In future work, we will incorporate round-trip
times for each edge, which we expect to reduce errors further."  This bench
implements that extension using each edge's great-circle distance (the
paper's own RTT proxy from Figure 6) and measures what it buys the global
*linear* model, where the missing edge identity hurts most.
"""

from conftest import MIN_SAMPLES

from repro.core.pipeline import GBTSettings, fit_global_model, select_heavy_edges


def test_bench_rtt_extension(study, benchmark):
    edges = select_heavy_edges(study.log, min_samples=MIN_SAMPLES, threshold=0.5)

    def run_extension():
        out = {}
        for label, kwargs in [
            ("linear", {}),
            ("linear+rtt", {"include_rtt": True}),
            ("gbt", {}),
            ("gbt+rtt", {"include_rtt": True}),
        ]:
            model = "gbt" if label.startswith("gbt") else "linear"
            res = fit_global_model(
                study.features, edges, model=model, threshold=0.5, seed=0,
                gbt=GBTSettings(n_estimators=150), **kwargs,
            )
            out[label] = res.mdape
        return out

    out = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    print("\n" + "\n".join(f"{k:<12} MdAPE {v:6.2f}%" for k, v in out.items()))
    # The RTT feature should not hurt, and should help the linear model,
    # which otherwise has no way to tell edges apart beyond ROmax/RImax.
    assert out["linear+rtt"] <= out["linear"] * 1.05
    assert out["gbt+rtt"] <= out["gbt"] * 1.2
