"""Performance benchmarks for the library's hot paths.

These are real pytest-benchmark measurements (multiple rounds), unlike the
experiment benches which regenerate a table once.
"""

import numpy as np
import pytest

from repro.core.contention import ContentionComputer, IntervalOverlapIndex
from repro.core.features import build_feature_matrix
from repro.ml.gbt import GradientBoostingRegressor
from repro.ml.linear import LinearRegression
from repro.sim.allocation import FlowSpec, Resource, allocate_maxmin
from tests.core.conftest import make_random_store


@pytest.fixture(scope="module")
def big_store():
    return make_random_store(n=5000, n_endpoints=12, seed=0, horizon=500_000.0)


def test_perf_feature_matrix_build(benchmark, big_store):
    """Full Table 2 feature engineering over a 5k-transfer log."""
    fm = benchmark(build_feature_matrix, big_store)
    assert len(fm) == 5000


def test_perf_overlap_index_queries(benchmark):
    rng = np.random.default_rng(0)
    n = 20_000
    ts = rng.uniform(0, 1e6, n)
    te = ts + rng.uniform(1, 1000, n)
    w = rng.uniform(0, 1e9, n)
    idx = IntervalOverlapIndex(ts, te, w)
    a = rng.uniform(0, 1e6, 5000)
    b = a + rng.uniform(1, 1000, 5000)
    out = benchmark(idx.overlap_sum, a, b)
    assert out.shape == (5000,)


def test_perf_gbt_training(benchmark):
    rng = np.random.default_rng(1)
    X = rng.uniform(size=(3000, 15))
    y = np.sin(4 * X[:, 0]) + X[:, 1] * X[:, 2] + rng.normal(0, 0.05, 3000)
    model = benchmark(
        lambda: GradientBoostingRegressor(
            n_estimators=100, max_depth=4, random_state=0
        ).fit(X, y)
    )
    assert len(model.trees_) == 100


def test_perf_gbt_prediction(benchmark):
    rng = np.random.default_rng(2)
    X = rng.uniform(size=(3000, 15))
    y = X @ rng.uniform(size=15)
    model = GradientBoostingRegressor(n_estimators=100, max_depth=4).fit(X, y)
    X_test = rng.uniform(size=(10_000, 15))
    pred = benchmark(model.predict, X_test)
    assert pred.shape == (10_000,)


def test_perf_linear_regression(benchmark):
    rng = np.random.default_rng(3)
    X = rng.normal(size=(10_000, 15))
    y = X @ rng.uniform(size=15) + rng.normal(size=10_000)
    model = benchmark(lambda: LinearRegression().fit(X, y))
    assert model.coef_.shape == (15,)


def test_perf_maxmin_allocation(benchmark):
    rng = np.random.default_rng(4)
    resources = [Resource(f"r{i}", float(rng.uniform(1e8, 1e10))) for i in range(60)]
    flows = []
    for j in range(40):
        picks = rng.choice(60, size=5, replace=False)
        flows.append(
            FlowSpec(
                f"f{j}",
                tuple(f"r{i}" for i in picks),
                weight=float(rng.uniform(1, 32)),
                rate_cap=float(rng.uniform(1e7, 1e9)),
            )
        )
    rates = benchmark(allocate_maxmin, resources, flows)
    assert len(rates) == 40


def test_perf_simulation_throughput(benchmark):
    """Events/second of the fluid simulator on a contended edge."""
    from repro.sim import TransferRequest, TransferService, build_esnet_testbed
    from repro.sim.units import GB

    def run_sim():
        svc = TransferService(build_esnet_testbed(), seed=0)
        for i in range(100):
            svc.submit(
                TransferRequest(
                    src="ANL-DTN", dst="BNL-DTN", total_bytes=20 * GB,
                    n_files=10, submit_time=i * 20.0,
                )
            )
        return svc.run()

    log = benchmark(run_sim)
    assert len(log) == 100
