"""Regenerate Table 5: Pearson CC vs MIC dependence study."""

import numpy as np

from conftest import MIN_SAMPLES

from repro.harness import exp_table5


def test_bench_table5(study, benchmark):
    result = benchmark.pedantic(
        exp_table5.run, args=(study,), rounds=1, iterations=1
    )
    print("\n" + result.render())
    assert len(result.rows) == 8  # 4 edges x (CC row + MIC row)
    # C and P are constant on every edge: CC shows '-' and MIC 0.
    c_idx = result.headers.index("C")
    p_idx = result.headers.index("P")
    for cc_row, mic_row in zip(result.rows[::2], result.rows[1::2]):
        assert cc_row[c_idx] == "-" and cc_row[p_idx] == "-"
        assert mic_row[c_idx] == 0.0 and mic_row[p_idx] == 0.0
    # The paper's point: some features show MIC clearly above |CC|
    # (nonlinear dependence a linear model cannot capture).
    nb_idx = result.headers.index("Nb")
    gaps = [
        mic_row[nb_idx] - cc_row[nb_idx]
        for cc_row, mic_row in zip(result.rows[::2], result.rows[1::2])
        if isinstance(cc_row[nb_idx], float)
    ]
    assert max(gaps) > 0.1, "no feature shows the MIC >> CC signature"
