"""Regenerate Table 1 and validate the Eq. 1 invariants."""

from repro.harness import exp_table1
from repro.sim.units import to_gbit_per_s


def test_bench_table1(benchmark):
    result = benchmark.pedantic(exp_table1.run, rounds=1, iterations=1)
    print("\n" + result.render())
    # Shape claims from the paper's Table 1:
    assert result.metrics["eq1_violations"] == 0
    assert result.metrics["disk_write_limited_edges"] == 12
    for row in result.rows:
        src, dst, r, dw, dr, mm = row[:6]
        assert r <= min(dw, dr, mm) * 1.001
        assert 4.5 < r < 10.0
    # CERN rows read slower and transfer slower than US-only rows.
    cern_src_rows = [row for row in result.rows if row[0] == "CERN"]
    us_rows = [row for row in result.rows if row[0] != "CERN" and row[1] != "CERN"]
    assert max(r[4] for r in cern_src_rows) < min(r[4] for r in us_rows)
