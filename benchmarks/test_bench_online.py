"""Extension bench: submission-time prediction accuracy (scheduling use)."""

from conftest import MIN_SAMPLES

from repro.harness import exp_online


def test_bench_online(study, benchmark):
    result = benchmark.pedantic(
        exp_online.run,
        args=(study,),
        kwargs={"min_samples": MIN_SAMPLES, "max_eval": 120},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    m = result.metrics
    # The paper's scheduling use case only works if prediction without
    # future knowledge stays accurate: require single-digit online MdAPE
    # and at worst a modest penalty over the retrospective evaluation.
    assert m["median_online_mdape"] < 10.0
    assert m["online_penalty_factor"] < 3.0
