"""Extension bench: submission-time prediction accuracy (scheduling use),
plus serving throughput of the vectorized batch prediction engine."""

from conftest import MIN_SAMPLES

from repro.harness import exp_online
from repro.serve import run_serve_bench


def test_bench_serve_throughput(benchmark):
    """1k concurrent requests against a 10k-transfer active window: the
    batch engine must beat looping the scalar predictor by >= 10x while
    producing the same rates."""
    result = benchmark.pedantic(
        run_serve_bench,
        kwargs={"n_active": 10_000, "n_requests": 1_000, "n_endpoints": 40},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    assert result.speedup >= 10.0
    assert result.max_abs_diff < 1e-6


def test_bench_online(study, benchmark):
    result = benchmark.pedantic(
        exp_online.run,
        args=(study,),
        kwargs={"min_samples": MIN_SAMPLES, "max_eval": 120},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    m = result.metrics
    # The paper's scheduling use case only works if prediction without
    # future knowledge stays accurate: require single-digit online MdAPE
    # and at worst a modest penalty over the retrospective evaluation.
    assert m["median_online_mdape"] < 10.0
    assert m["online_penalty_factor"] < 3.0
