"""Shared fixtures for the benchmark suite.

Every table/figure bench consumes the same cached production study.  The
default is the *quick* (4-day) study so the suite runs in minutes; set
``REPRO_FULL_STUDY=1`` to regenerate against the full 14-day study the
EXPERIMENTS.md numbers come from.

Benchmarks use ``benchmark.pedantic(..., rounds=1)`` for experiment
regeneration (the interesting output is the experiment's table, printed on
the fly) and normal ``benchmark(...)`` for the micro/perf benches.
"""

import os

import pytest

from repro.harness.runners import StudyConfig, load_production_study


def study_config() -> StudyConfig:
    if os.environ.get("REPRO_FULL_STUDY"):
        return StudyConfig()
    return StudyConfig.quick()


# Quick-study per-edge counts are ~1/4 of the full study's, so experiments
# lower their min_samples accordingly.
MIN_SAMPLES = 300 if os.environ.get("REPRO_FULL_STUDY") else 80


@pytest.fixture(scope="session")
def study():
    return load_production_study(study_config())
