"""Regenerate §5.4: the single model for all edges."""

from conftest import MIN_SAMPLES

from repro.harness import exp_models


def test_bench_single_model(study, benchmark):
    result = benchmark.pedantic(
        exp_models.run_single_model,
        args=(study,),
        kwargs={"min_samples": MIN_SAMPLES},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    m = result.metrics
    # Paper: global LR 19 % — much worse than per-edge LR (7 %) but still
    # usable; global XGB stays in single digits (4.9 %).
    assert m["global_xgb_mdape"] < m["global_linear_mdape"]
    assert m["global_xgb_mdape"] < 15.0
    per_edge_lr = result.rows[2][2]
    assert m["global_linear_mdape"] > per_edge_lr
