"""Regenerate Figure 6: size vs distance vs rate."""

from repro.harness import exp_figure6


def test_bench_figure6(study, benchmark):
    result = benchmark.pedantic(
        exp_figure6.run, args=(study,), rounds=1, iterations=1
    )
    print("\n" + result.render())
    # Rate correlates with transfer size (startup amortisation) ...
    assert result.metrics["corr_logsize_lograte"] > 0.5
    # ... and falls with distance where the network dominates (large
    # transfers; the overall correlation is diluted by slow short-distance
    # personal-endpoint edges, so only require it to be ~non-positive).
    assert result.metrics["corr_logdist_lograte_large_transfers"] < -0.05
    assert result.metrics["corr_logdist_lograte"] < 0.1
    # Intercontinental transfers have a lower rate ceiling (the p95; the
    # medians are confounded by the size mix of each population).
    intra, inter = result.rows
    assert inter[3] < intra[3]
    # The log spans many decades in both size and rate.
    assert result.metrics["size_decades"] > 9.0
    assert result.metrics["rate_decades"] > 6.0
