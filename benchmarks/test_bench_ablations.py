"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation quantifies what a modelling decision buys:

1. overlap scaling — Eq. 2's O(i,k)/(Te-Ts) factor vs a naive "count every
   concurrent transfer at full weight";
2. feature groups — tunables only vs +characteristics vs +load;
3. the Rmax threshold filter on/off for the global model;
4. GBT depth sweep — the capacity the nonlinear model actually needs;
5. MIC grid budget (alpha) — detection power vs compute.
"""

import os

import numpy as np
import pytest

from conftest import MIN_SAMPLES

from repro.core.analytical import threshold_mask
from repro.core.features import FEATURE_NAMES
from repro.core.pipeline import (
    GBTSettings,
    fit_global_model,
    select_heavy_edges,
)
from repro.ml.correlation import mic
from repro.ml.gbt import GradientBoostingRegressor
from repro.ml.metrics import mdape
from repro.ml.scaler import StandardScaler
from repro.ml.selection import train_test_split

_LOAD_FEATURES = [
    n for n in FEATURE_NAMES if n.startswith(("K_", "S_", "G_"))
]
_CHARACTERISTIC_FEATURES = ["Nb", "Nf", "Nd"]
_TUNABLE_FEATURES = ["C", "P"]


def _edge_data(study, threshold=0.5):
    """Pooled (X-columns dict, y, rows) for the busiest edge."""
    edges = select_heavy_edges(study.log, min_samples=MIN_SAMPLES, threshold=threshold)
    src, dst = edges[0]
    mask = threshold_mask(study.log, threshold)
    rows = study.features.edge_rows(src, dst)
    rows = rows[mask[rows]]
    return study.features, study.features.y[rows], rows


def _fit_mdape(X, y, seed=0):
    tr, te = train_test_split(X.shape[0], 0.7, rng=seed)
    scaler = StandardScaler().fit(X[tr])
    model = GradientBoostingRegressor(
        n_estimators=150, learning_rate=0.1, max_depth=4, random_state=seed
    ).fit(scaler.transform(X[tr]), y[tr])
    return mdape(y[te], model.predict(scaler.transform(X[te])))


class TestOverlapScalingAblation:
    def test_bench_overlap_scaling(self, study, benchmark):
        """Eq. 2's overlap scaling vs binary 'any overlap' contention."""
        features, y, rows = _edge_data(study)

        def run_ablation():
            X_scaled = features.matrix(FEATURE_NAMES, rows)
            scaled = _fit_mdape(X_scaled, y)

            # Binary variant: replace every contention feature with its
            # sign (competitor present or not, no overlap weighting).
            X_binary = X_scaled.copy()
            for i, name in enumerate(FEATURE_NAMES):
                if name.startswith(("K_", "S_", "G_")):
                    X_binary[:, i] = (X_scaled[:, i] > 0).astype(float)
            binary = _fit_mdape(X_binary, y)
            return scaled, binary

        scaled, binary = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
        print(f"\noverlap-scaled MdAPE {scaled:.2f}% vs binary {binary:.2f}%")
        # The magnitude of overlap-scaled load must carry real signal.
        assert scaled < binary


class TestFeatureGroupAblation:
    def test_bench_feature_groups(self, study, benchmark):
        features, y, rows = _edge_data(study)

        def run_ablation():
            out = {}
            groups = {
                "tunables": _TUNABLE_FEATURES,
                "+characteristics": _TUNABLE_FEATURES + _CHARACTERISTIC_FEATURES,
                "+load (all 15)": list(FEATURE_NAMES),
            }
            for label, names in groups.items():
                X = features.matrix(tuple(names), rows)
                # C/P are constant: give the tunables-only model a bias
                # column so it degenerates to the mean predictor cleanly.
                if label == "tunables":
                    X = np.column_stack([X, np.ones(X.shape[0])])
                out[label] = _fit_mdape(X, y)
            return out

        out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
        print("\n" + "\n".join(f"{k:<18} MdAPE {v:6.2f}%" for k, v in out.items()))
        # Each feature group buys accuracy; load features buy the most.
        assert out["+load (all 15)"] < out["+characteristics"] < out["tunables"]


class TestThresholdAblation:
    def test_bench_threshold_on_off(self, study, benchmark):
        """§4.3.2's unknown-load filter, on vs off, for the global model."""
        edges = select_heavy_edges(
            study.log, min_samples=MIN_SAMPLES, threshold=0.5
        )

        def run_ablation():
            with_filter = fit_global_model(
                study.features, edges, model="gbt", threshold=0.5, seed=0,
                gbt=GBTSettings(n_estimators=150),
            )
            without = fit_global_model(
                study.features, edges, model="gbt", threshold=0.0, seed=0,
                gbt=GBTSettings(n_estimators=150),
            )
            return with_filter.mdape, without.mdape

        filtered, unfiltered = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
        print(f"\nthreshold 0.5: MdAPE {filtered:.2f}%; no filter: {unfiltered:.2f}%")
        # Unknown load makes the unfiltered problem strictly harder.
        assert filtered < unfiltered


class TestDepthSweep:
    def test_bench_gbt_depth(self, study, benchmark):
        features, y, rows = _edge_data(study)
        X = features.matrix(FEATURE_NAMES, rows)
        tr, te = train_test_split(X.shape[0], 0.7, rng=0)
        scaler = StandardScaler().fit(X[tr])
        Xtr, Xte = scaler.transform(X[tr]), scaler.transform(X[te])

        def sweep():
            out = {}
            for depth in (1, 2, 4, 6):
                m = GradientBoostingRegressor(
                    n_estimators=150, max_depth=depth, random_state=0
                ).fit(Xtr, y[tr])
                out[depth] = mdape(y[te], m.predict(Xte))
            return out

        out = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\n" + "\n".join(f"depth {d}: MdAPE {v:6.2f}%" for d, v in out.items()))
        # Depth >= 2 (feature interactions) beats stumps — the load
        # features interact, as the paper's nonlinearity analysis implies.
        assert out[4] < out[1]


class TestMicBudget:
    def test_bench_mic_alpha(self, benchmark):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, 1200)
        y = x**2 + rng.normal(0, 0.1, 1200)

        def sweep():
            return {a: mic(x, y, alpha=a) for a in (0.4, 0.5, 0.6, 0.7)}

        out = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\n" + "\n".join(f"alpha {a}: MIC {v:.3f}" for a, v in out.items()))
        # Larger grid budgets detect the nonlinear dependence at least as
        # well; even the smallest budget clearly beats the |CC| (~0).
        vals = list(out.values())
        assert vals == sorted(vals)
        assert out[0.4] > 0.3
