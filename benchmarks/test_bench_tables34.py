"""Regenerate Tables 3 and 4: representativeness of the 30 edges."""

from repro.harness import exp_tables34


def test_bench_table3(study, benchmark):
    result = benchmark.pedantic(
        exp_tables34.run_table3, args=(study,), rounds=1, iterations=1
    )
    print("\n" + result.render())
    all_row, heavy_row = result.rows
    # Paper's 30-edge percentiles: 247 / 1,436 / 3,947 km.
    assert 100 < heavy_row[1] < 500
    assert 900 < heavy_row[2] < 2200
    assert 3000 < heavy_row[3] < 6000
    # Percentiles are ordered within each population.
    assert all_row[1] < all_row[2] < all_row[3]


def test_bench_table4(study, benchmark):
    result = benchmark.pedantic(
        exp_tables34.run_table4, args=(study,), rounds=1, iterations=1
    )
    print("\n" + result.render())
    all_row, heavy_row = result.rows
    # Paper: GCS=>GCS dominates both populations (45% / 51%), then
    # GCS=>GCP, then GCP=>GCS.
    assert heavy_row[1] > heavy_row[2] > heavy_row[3]
    assert 40 < heavy_row[1] < 65
    assert abs(all_row[1] + all_row[2] + all_row[3] - 100.0) < 1.0
