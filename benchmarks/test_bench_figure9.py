"""Regenerate Figure 9: linear-model feature significance grid."""

import numpy as np

from conftest import MIN_SAMPLES

from repro.harness import exp_models


def test_bench_figure9(study, benchmark):
    result = benchmark.pedantic(
        exp_models.run_figure9,
        args=(study,),
        kwargs={"min_samples": MIN_SAMPLES},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    grid = result.series["grid"]
    # C and P are eliminated on every edge (the red crosses).
    assert {"C", "P"} <= set(grid.eliminated_everywhere())
    # Load features carry weight: at least one K/S/G feature ranks in the
    # top five by mean significance.
    top5 = [name for name, _ in result.rows[:5]]
    assert any(n.startswith(("K_", "S_", "G_")) for n in top5)
    # Each edge's row is scaled to max 1.
    finite_max = np.nanmax(grid.values, axis=1)
    assert np.allclose(finite_max, 1.0)
