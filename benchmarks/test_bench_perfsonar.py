"""Regenerate the §3.2 perfSONAR bound study."""

from repro.harness import exp_perfsonar


def test_bench_perfsonar(study, benchmark):
    result = benchmark.pedantic(
        exp_perfsonar.run, args=(study,), rounds=1, iterations=1
    )
    print("\n" + result.render())
    m = result.metrics
    # The §3.2 funnel: partial deployment filters the edge set down.
    assert m["testable"] <= m["probeable"] <= m["heavy_edges"]
    assert m["testable"] >= 2
    # Most tested edges should be bound-consistent or explainable.
    explained = m["bound_consistent"] + m["interface_mismatch"]
    assert explained >= 0.5 * m["testable"]
    # Classification counters are consistent.
    assert (
        m["interface_mismatch"] + m["within_bound"] + m["within_after_k"]
        + m["below_bound"] <= m["testable"]
    )
