"""Regenerate Figure 10: per-edge error distributions, LR vs XGB."""

from conftest import MIN_SAMPLES

from repro.harness import exp_models


def test_bench_figure10(study, benchmark):
    result = benchmark.pedantic(
        exp_models.run_figure10,
        args=(study,),
        kwargs={"min_samples": MIN_SAMPLES},
        rounds=1,
        iterations=1,
    )
    print("\n" + result.render())
    # XGB's error distribution is tighter than LR's on most edges.
    assert (
        result.metrics["edges_where_xgb_tighter"]
        >= 0.7 * result.metrics["n_edges"]
    )
